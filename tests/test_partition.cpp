/**
 * @file
 * Tests for the multi-core partitioning module: TA-DRRIP's per-thread
 * dueling, the UMON utility monitor and lookahead algorithm, UCP
 * enforcement, PIPP priority mechanics, and PD-based partitioning.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "check/invariant_auditor.h"
#include "partition/pdp_partition.h"
#include "partition/pipp.h"
#include "partition/ta_drrip.h"
#include "partition/ucp.h"
#include "partition/umon.h"
#include "sim/multi_core_sim.h"

using namespace pdp;

namespace
{

CacheConfig
tinyConfig(uint32_t sets, uint32_t ways, bool bypass = false)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    cfg.ways = ways;
    cfg.allowBypass = bypass;
    return cfg;
}

AccessContext
at(uint64_t line, uint8_t thread)
{
    AccessContext ctx;
    ctx.lineAddr = line;
    ctx.threadId = thread;
    return ctx;
}

} // namespace

TEST(Umon, UtilityCurveReflectsWorkingSet)
{
    // Thread 0 cycles 4 lines in the sampled set: with >= 4 ways it hits,
    // with fewer it thrashes (LRU), so the marginal utility concentrates
    // at way 4.
    Umon umon(2, 64, 8, /*sampled_sets=*/1);
    for (int lap = 0; lap < 50; ++lap)
        for (uint64_t line = 0; line < 4; ++line)
            umon.observe(0, line, 0);
    EXPECT_EQ(umon.hitsWithWays(0, 3), 0u);
    EXPECT_GT(umon.hitsWithWays(0, 4), 100u);
}

TEST(Umon, LookaheadGivesWaysToTheUtileThread)
{
    Umon umon(2, 64, 8, 1);
    // Thread 0: strong reuse at 6 ways; thread 1: streaming (no reuse).
    for (int lap = 0; lap < 50; ++lap)
        for (uint64_t line = 0; line < 6; ++line)
            umon.observe(0, line, 0);
    for (uint64_t i = 0; i < 300; ++i)
        umon.observe(0, 1000 + i, 1);
    const auto alloc = umon.lookaheadPartition();
    ASSERT_EQ(alloc.size(), 2u);
    EXPECT_EQ(alloc[0] + alloc[1], 8u);
    EXPECT_GE(alloc[0], 6u);
    EXPECT_GE(alloc[1], 1u); // everyone keeps at least one way
}

TEST(Umon, DegenerateAtThreadsEqualWays)
{
    // 16 threads, 16 ways: the lookahead cannot do better than 1 each —
    // the structural reason UCP "does not scale" in Fig. 12.
    Umon umon(16, 64, 16, 1);
    const auto alloc = umon.lookaheadPartition();
    for (uint32_t ways : alloc)
        EXPECT_EQ(ways, 1u);
}

TEST(Ucp, EnforcesAllocationAgainstOverusers)
{
    auto policy = std::make_unique<UcpPolicy>(2, /*interval=*/100);
    UcpPolicy *ucp = policy.get();
    Cache cache(tinyConfig(64, 8), std::move(policy));
    // Thread 0 shows reuse at 6 lines; thread 1 streams.
    for (int lap = 0; lap < 300; ++lap) {
        for (uint64_t line = 0; line < 6; ++line)
            cache.access(at(line * 64, 0));
        for (int s = 0; s < 6; ++s)
            cache.access(at((100000 + lap * 8 + s) * 64, 1));
    }
    EXPECT_GE(ucp->allocation()[0], 5u);
    // Thread 0's reused lines survive thread 1's stream.
    EXPECT_GT(cache.stats().threadHits[0], 1000u);
}

TEST(Pipp, VictimIsLowestPriority)
{
    auto policy = std::make_unique<PippPolicy>(2);
    Cache cache(tinyConfig(4, 4), std::move(policy));
    // Fill the set, then cause a miss: someone must be evicted (no
    // bypass in PIPP), and the cache stays consistent.
    for (uint64_t i = 0; i < 16; ++i)
        cache.access(at(i * 4, i % 2));
    EXPECT_EQ(cache.stats().misses, 16u);
    uint32_t valid = 0;
    for (uint32_t w = 0; w < 4; ++w)
        valid += cache.isValid(0, w);
    EXPECT_EQ(valid, 4u);
}

TEST(Pipp, PromotionIsGradual)
{
    PippPolicy::Params params;
    params.promotionProb = 1.0; // deterministic for the test
    auto policy = std::make_unique<PippPolicy>(2, params);
    Cache cache(tinyConfig(1, 4), std::move(policy));
    cache.access(at(0, 0));
    cache.access(at(4, 0));
    cache.access(at(8, 0));
    cache.access(at(12, 0));
    // Hit line 0 repeatedly: it climbs one position per hit, so after
    // several hits it is no longer the victim.
    for (int i = 0; i < 4; ++i)
        cache.access(at(0, 0));
    const AccessOutcome out = cache.access(at(16, 0));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_NE(out.evictedAddr, 0u);
}

TEST(TaDrrip, PerThreadDuelingIndependent)
{
    auto policy = std::make_unique<TaDrripPolicy>(4);
    Cache cache(tinyConfig(2048, 16), std::move(policy));
    // Just exercise the paths: four threads, mixed hits/misses.
    for (uint64_t i = 0; i < 20000; ++i)
        cache.access(at((i % 3000) * 64, static_cast<uint8_t>(i % 4)));
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PdpPartition, PerThreadPdsDiverge)
{
    auto policy = std::make_unique<PdpPartitionPolicy>(2, 8);
    PdpPartitionPolicy *pdp = policy.get();
    CacheConfig cfg = tinyConfig(2048, 16, /*bypass=*/true);
    Cache cache(cfg, std::move(policy));
    // Thread 0: loop with per-set RD ~40 (80 lines/set cycling over
    // 2048 sets interleaved 1:1 with thread 1's stream).
    // Thread 1: pure streaming.
    const uint64_t loop_lines = 20 * 2048;
    uint64_t scan = 1ull << 40;
    for (uint64_t i = 0; i < 1'500'000; ++i) {
        cache.access(at(i % loop_lines, 0));
        cache.access(at(scan++, 1));
    }
    ASSERT_FALSE(pdp->pdHistory().empty());
    const auto &pds = pdp->threadPds();
    // Thread 0 gets a protecting PD near its reuse distance (40, in
    // total accesses); thread 1 (no reuse) is shrunk to the minimum.
    EXPECT_GE(pds[0], 40u);
    EXPECT_LE(pds[1], 32u);
}

TEST(PdpPartition, ProtectedThreadHitsStreamDoesNot)
{
    auto policy = std::make_unique<PdpPartitionPolicy>(2, 8);
    CacheConfig cfg = tinyConfig(2048, 16, true);
    Cache cache(cfg, std::move(policy));
    const uint64_t loop_lines = 20 * 2048;
    uint64_t scan = 1ull << 40;
    for (uint64_t i = 0; i < 1'500'000; ++i) {
        cache.access(at(i % loop_lines, 0));
        cache.access(at(scan++, 1));
    }
    EXPECT_GT(cache.stats().threadHits[0], 100000u);
    EXPECT_EQ(cache.stats().threadHits[1], 0u);
}

TEST(SharedPolicyFactory, BuildsAll)
{
    for (const char *spec :
         {"LRU", "DIP", "TA-DRRIP", "UCP", "PIPP", "PDP-2", "PDP-3"}) {
        auto policy = makeSharedPolicy(spec, 4);
        ASSERT_NE(policy, nullptr);
    }
    EXPECT_THROW(makeSharedPolicy("nope", 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dynamic tenants (TenantAwarePartition, service mode)
// ---------------------------------------------------------------------------

TEST(Umon, InactiveThreadsGetNoWays)
{
    Umon umon(4, 64, 8, 1);
    umon.setActive(2, false);
    umon.setActive(3, false);
    // Thread 0 shows reuse at 6 ways; thread 1 streams.
    for (int lap = 0; lap < 50; ++lap)
        for (uint64_t line = 0; line < 6; ++line)
            umon.observe(0, line, 0);
    for (uint64_t i = 0; i < 300; ++i)
        umon.observe(0, 1000 + i, 1);
    const auto alloc = umon.lookaheadPartition();
    ASSERT_EQ(alloc.size(), 4u);
    EXPECT_EQ(alloc[2], 0u);
    EXPECT_EQ(alloc[3], 0u);
    // The whole cache splits over the two active threads only.
    EXPECT_EQ(alloc[0] + alloc[1], 8u);
    EXPECT_GE(alloc[0], 6u);
    EXPECT_GE(alloc[1], 1u);
}

TEST(Umon, ResetThreadClearsTheCurveForTheNextOccupant)
{
    Umon umon(2, 64, 8, 1);
    for (int lap = 0; lap < 50; ++lap)
        for (uint64_t line = 0; line < 4; ++line)
            umon.observe(0, line, 0);
    ASSERT_GT(umon.hitsWithWays(0, 8), 0u);
    umon.resetThread(0);
    // The recycled slot starts with a blank utility curve: the previous
    // occupant's reuse must not shape the next tenant's allocation.
    for (uint32_t w = 1; w <= 8; ++w)
        EXPECT_EQ(umon.hitsWithWays(0, w), 0u);
}

namespace
{

/** One scripted UCP churn sequence; returns the allocation after each
 *  lifecycle step (for determinism comparison across runs). */
std::vector<std::vector<uint32_t>>
ucpChurnSequence()
{
    auto policy = std::make_unique<UcpPolicy>(4, /*interval=*/1'000'000);
    UcpPolicy *ucp = policy.get();
    Cache cache(tinyConfig(64, 8), std::move(policy));
    ucp->beginTenantMode();
    EXPECT_EQ(ucp->activeTenants(), 0u);

    std::vector<std::vector<uint32_t>> history;
    EXPECT_EQ(ucp->tenantJoin(), 0);
    EXPECT_EQ(ucp->tenantJoin(), 1);
    history.push_back(ucp->allocation());

    // Thread 0 reuses 6 lines, thread 1 streams.
    for (int lap = 0; lap < 300; ++lap) {
        for (uint64_t line = 0; line < 6; ++line)
            cache.access(at(line * 64, 0));
        for (int s = 0; s < 6; ++s)
            cache.access(at((100000 + lap * 8 + s) * 64, 1));
    }

    EXPECT_EQ(ucp->tenantJoin(), 2);
    history.push_back(ucp->allocation());
    ucp->tenantLeave(1);
    history.push_back(ucp->allocation());
    // The vacated slot is the lowest free one, so it is recycled next.
    EXPECT_EQ(ucp->tenantJoin(), 1);
    history.push_back(ucp->allocation());

    for (int lap = 0; lap < 50; ++lap)
        for (uint64_t line = 0; line < 4; ++line)
            cache.access(at((5000 + line) * 64, 2));
    history.push_back(ucp->allocation());

    // The cache itself stays invariant-clean through the churn.
    InvariantAuditor auditor;
    auditor.watchCache(cache);
    auditor.auditNow();
    EXPECT_EQ(auditor.totalViolations(), 0u)
        << auditor.lastReport().report();
    return history;
}

} // namespace

TEST(Ucp, TenantChurnReallocatesDeterministically)
{
    const auto first = ucpChurnSequence();
    const auto second = ucpChurnSequence();
    EXPECT_EQ(first, second);

    // Inactive slots hold zero ways at every step; active slots cover
    // the whole cache.
    for (const auto &alloc : first) {
        uint32_t total = 0;
        for (uint32_t ways : alloc)
            total += ways;
        EXPECT_EQ(total, 8u);
    }
}

TEST(Ucp, TenantQuotasTrackActiveSlots)
{
    auto policy = std::make_unique<UcpPolicy>(4, 1'000'000);
    UcpPolicy *ucp = policy.get();
    Cache cache(tinyConfig(64, 8), std::move(policy));
    ucp->beginTenantMode();
    ucp->tenantJoin();
    ucp->tenantJoin();
    ucp->tenantJoin();
    ucp->tenantLeave(1);
    EXPECT_EQ(ucp->activeTenants(), 2u);
    EXPECT_TRUE(ucp->tenantActive(0));
    EXPECT_FALSE(ucp->tenantActive(1));
    const std::vector<double> quotas = ucp->tenantQuotas();
    ASSERT_EQ(quotas.size(), 4u);
    EXPECT_EQ(quotas[1], 0.0);
    EXPECT_EQ(quotas[3], 0.0);
    double sum = 0.0;
    for (double q : quotas)
        sum += q;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Ucp, TenantJoinReturnsMinusOneWhenFull)
{
    auto policy = std::make_unique<UcpPolicy>(2, 1'000'000);
    UcpPolicy *ucp = policy.get();
    Cache cache(tinyConfig(64, 8), std::move(policy));
    ucp->beginTenantMode();
    EXPECT_EQ(ucp->tenantJoin(), 0);
    EXPECT_EQ(ucp->tenantJoin(), 1);
    EXPECT_EQ(ucp->tenantJoin(), -1);
}

TEST(PdpPartition, TenantChurnKeepsInvariantsAndRecyclesSlots)
{
    auto policy = std::make_unique<PdpPartitionPolicy>(4, 3);
    PdpPartitionPolicy *pdp = policy.get();
    Cache cache(tinyConfig(256, 16, /*bypass=*/true), std::move(policy));
    pdp->beginTenantMode();

    EXPECT_EQ(pdp->tenantJoin(), 0);
    EXPECT_EQ(pdp->tenantJoin(), 1);
    uint64_t scan = 1ull << 40;
    for (uint64_t i = 0; i < 50'000; ++i) {
        cache.access(at(i % 2048, 0));
        cache.access(at(scan++, 1));
    }
    pdp->tenantLeave(0);
    // A vacated slot drops to minimal protection (counterStep) so its
    // residual lines age out — auditGlobal's part.inactive_pd invariant.
    EXPECT_FALSE(pdp->tenantActive(0));
    EXPECT_EQ(pdp->tenantJoin(), 0); // lowest slot recycled
    EXPECT_EQ(pdp->tenantJoin(), 2);
    EXPECT_EQ(pdp->activeTenants(), 3u);
    for (uint64_t i = 0; i < 20'000; ++i)
        cache.access(at(i % 1024, 2));

    InvariantAuditor auditor;
    auditor.watchCache(cache);
    auditor.auditNow();
    EXPECT_EQ(auditor.totalViolations(), 0u)
        << auditor.lastReport().report();

    const std::vector<double> quotas = pdp->tenantQuotas();
    ASSERT_EQ(quotas.size(), 4u);
    EXPECT_EQ(quotas[3], 0.0);
    double sum = 0.0;
    for (double q : quotas)
        sum += q;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PdpPartition, InactiveSlotHoldsMinimalPdAfterLeave)
{
    auto policy = std::make_unique<PdpPartitionPolicy>(2, 3);
    PdpPartitionPolicy *pdp = policy.get();
    Cache cache(tinyConfig(256, 16, true), std::move(policy));
    pdp->beginTenantMode();
    ASSERT_EQ(pdp->tenantJoin(), 0);
    ASSERT_EQ(pdp->tenantJoin(), 1);
    for (uint64_t i = 0; i < 30'000; ++i)
        cache.access(at(i % 512, static_cast<uint8_t>(i & 1)));
    pdp->tenantLeave(1);
    // counterStep is the minimum PD the model admits (S_c = 16 here via
    // makePdpPartition defaults is 16; the direct ctor uses Params'
    // default step).
    InvariantReporter reporter;
    pdp->auditGlobal(reporter);
    EXPECT_TRUE(reporter.clean()) << reporter.report();
    EXPECT_LE(pdp->threadPds()[1], pdp->threadPds()[0]);
}

/**
 * @file
 * Unit tests for the PDP core: RD sampler accuracy, counter-array
 * semantics, the hit-rate model, protection enforcement of the policy,
 * bypass behaviour, n_c quantization and dynamic recomputation.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "policies/basic.h"
#include "core/hit_rate_model.h"
#include "core/pdp_policy.h"
#include "core/rd_profiler.h"
#include "core/rd_sampler.h"
#include "core/rdd.h"
#include "util/rng.h"

using namespace pdp;

namespace
{

CacheConfig
tinyConfig(uint32_t sets, uint32_t ways, bool bypass = true)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    cfg.ways = ways;
    cfg.allowBypass = bypass;
    return cfg;
}

AccessContext
at(uint64_t line)
{
    AccessContext ctx;
    ctx.lineAddr = line;
    return ctx;
}

} // namespace

TEST(RdSampler, MeasuresExactDistancesAtFullRate)
{
    RdSamplerParams params = RdSamplerParams::full(1);
    RdSampler sampler(params, 1);
    // Access pattern: X, a, b, c, X -> RD(X) = 4.
    sampler.observe(0, 0x100);
    sampler.observe(0, 0x200);
    sampler.observe(0, 0x300);
    sampler.observe(0, 0x400);
    const RdObservation obs = sampler.observe(0, 0x100);
    ASSERT_TRUE(obs.rd.has_value());
    EXPECT_EQ(*obs.rd, 4u);
}

TEST(RdSampler, InvalidatesEntryAfterHit)
{
    RdSampler sampler(RdSamplerParams::full(1), 1);
    sampler.observe(0, 0x100);
    sampler.observe(0, 0x100); // hit, invalidates
    const RdObservation again = sampler.observe(0, 0x100);
    // The second reuse re-measures only from the new insertion.
    ASSERT_TRUE(again.rd.has_value());
    EXPECT_EQ(*again.rd, 1u);
}

TEST(RdSampler, OnlySampledSetsObserve)
{
    RdSampler sampler(RdSamplerParams{}, 2048); // 32 of 2048 sets
    EXPECT_TRUE(sampler.isSampled(0));
    EXPECT_TRUE(sampler.isSampled(64));
    EXPECT_FALSE(sampler.isSampled(1));
    const RdObservation obs = sampler.observe(1, 0x123);
    EXPECT_FALSE(obs.rd.has_value());
    EXPECT_FALSE(obs.inserted);
}

TEST(RdSampler, DitheredInsertionRateApproximatesOneOverM)
{
    RdSampler sampler(RdSamplerParams{}, 2048);
    uint64_t inserted = 0, total = 0;
    Rng rng(1);
    for (uint64_t i = 0; i < 200000; ++i) {
        const RdObservation obs = sampler.observe(0, rng.next());
        ++total;
        inserted += obs.inserted;
    }
    EXPECT_NEAR(static_cast<double>(inserted) / total, 1.0 / 8, 0.01);
}

TEST(RdSampler, AgreesWithExactProfilerOnRandomStream)
{
    // Statistical agreement: sampler RDD ~ exact RDD for a mixed stream.
    RdSampler sampler(RdSamplerParams::full(1, 256), 1);
    RdProfiler profiler(1, 256);
    Rng rng(7);
    uint64_t checked = 0;
    std::unordered_map<uint64_t, uint64_t> last;
    uint64_t count = 0;
    for (uint64_t i = 0; i < 50000; ++i) {
        const uint64_t line = rng.below(64);
        ++count;
        const auto it = last.find(line);
        const uint64_t true_rd = it == last.end() ? 0 : count - it->second;
        last[line] = count;
        const RdObservation obs = sampler.observe(0, line);
        if (obs.rd && true_rd > 0 && true_rd <= 256) {
            EXPECT_EQ(*obs.rd, true_rd);
            ++checked;
        }
    }
    EXPECT_GT(checked, 10000u);
}

TEST(RdCounterArray, BucketsByStep)
{
    RdCounterArray rdd(256, 4);
    EXPECT_EQ(rdd.numBuckets(), 64u);
    rdd.recordHit(1);
    rdd.recordHit(4);
    rdd.recordHit(5);
    EXPECT_EQ(rdd.bucket(0), 2u);
    EXPECT_EQ(rdd.bucket(1), 1u);
}

TEST(RdCounterArray, IgnoresOutOfRange)
{
    RdCounterArray rdd(256, 4);
    rdd.recordHit(0);
    rdd.recordHit(257);
    EXPECT_EQ(rdd.hitSum(), 0u);
}

TEST(RdCounterArray, FreezesOnSaturation)
{
    RdCounterArray rdd(16, 1, /*counter_bits=*/4);
    for (int i = 0; i < 100; ++i)
        rdd.recordHit(3);
    EXPECT_TRUE(rdd.frozen());
    const uint32_t frozen_value = rdd.bucket(2);
    rdd.recordHit(5);
    rdd.recordAccess();
    EXPECT_EQ(rdd.bucket(4), 0u);      // frozen: no further updates
    EXPECT_EQ(rdd.bucket(2), frozen_value);
    EXPECT_EQ(rdd.total(), 0u);
    rdd.decay();
    EXPECT_FALSE(rdd.frozen());
}

TEST(HitRateModel, PrefersTheDominantPeak)
{
    RdCounterArray rdd(256, 4);
    for (int i = 0; i < 1000; ++i)
        rdd.recordHit(70 + (i % 5));
    for (int i = 0; i < 1500; ++i)
        rdd.recordAccess();
    HitRateModel model(16);
    const uint32_t pd = model.bestPd(rdd);
    EXPECT_GE(pd, 72u);
    EXPECT_LE(pd, 96u);
}

TEST(HitRateModel, EmptyRddYieldsZero)
{
    RdCounterArray rdd(256, 4);
    HitRateModel model(16);
    EXPECT_EQ(model.bestPd(rdd), 0u);
    EXPECT_DOUBLE_EQ(model.evaluate(rdd, 64), 0.0);
}

TEST(HitRateModel, CurveIsMonotoneInHits)
{
    // All mass at small RD: E must peak early and decline after.
    RdCounterArray rdd(256, 4);
    for (int i = 0; i < 500; ++i)
        rdd.recordHit(8);
    for (int i = 0; i < 1000; ++i)
        rdd.recordAccess();
    HitRateModel model(16);
    const auto curve = model.curve(rdd);
    const uint32_t pd = model.bestPd(rdd);
    EXPECT_LE(pd, 24u);
    // The bucket containing the mass dominates the far tail.
    EXPECT_GT(curve[1].e, curve.back().e);
}

TEST(HitRateModel, PeaksFindsBothModes)
{
    RdCounterArray rdd(256, 4);
    for (int i = 0; i < 800; ++i)
        rdd.recordHit(30 + (i % 3));
    for (int i = 0; i < 500; ++i)
        rdd.recordHit(150 + (i % 3));
    for (int i = 0; i < 2000; ++i)
        rdd.recordAccess();
    HitRateModel model(16);
    const auto peaks = model.peaks(rdd, 3);
    ASSERT_GE(peaks.size(), 2u);
    bool near = false, far = false;
    for (const EPoint &p : peaks) {
        near |= p.dp >= 28 && p.dp <= 48;
        far |= p.dp >= 144 && p.dp <= 176;
    }
    EXPECT_TRUE(near);
    EXPECT_TRUE(far);
}

TEST(HitRateModel, HitsAndOccupancyPrefixes)
{
    RdCounterArray rdd(256, 4);
    rdd.recordHit(4);
    rdd.recordHit(8);
    rdd.recordAccess();
    rdd.recordAccess();
    rdd.recordAccess();
    EXPECT_EQ(HitRateModel::hits(rdd, 4), 1u);
    EXPECT_EQ(HitRateModel::hits(rdd, 8), 2u);
    HitRateModel model(16);
    // occupancy(8) = 1*4 + 1*8 + (3-2)*(8+16) = 36
    EXPECT_EQ(model.occupancy(rdd, 8), 36u);
}

TEST(PdpPolicy, ProtectedLinesSurviveUntilPd)
{
    // 1-set, 2-way cache, static PD 6 with bypass.
    Cache cache(tinyConfig(1, 2), makeSpdpB(6));
    cache.access(at(1));
    cache.access(at(2));
    // Both protected: the next misses must bypass, not evict.
    const AccessOutcome out = cache.access(at(3));
    EXPECT_TRUE(out.bypassed);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
}

TEST(PdpPolicy, UnprotectedLineIsVictim)
{
    Cache cache(tinyConfig(1, 2), makeSpdpB(3));
    cache.access(at(1)); // RPD 3 -> 2 after self-decrement
    cache.access(at(2)); // line1 RPD 1
    cache.access(at(3)); // line1 RPD 0 at selection? bypassed or evict
    cache.access(at(4)); // by now line 1 must be evictable
    EXPECT_FALSE(cache.contains(1));
}

TEST(PdpPolicy, PromotionReprotects)
{
    Cache cache(tinyConfig(1, 2), makeSpdpB(4));
    cache.access(at(1));
    cache.access(at(2));
    cache.access(at(1)); // promote: RPD back to 4
    cache.access(at(3));
    cache.access(at(4));
    // Line 2 expires before line 1.
    EXPECT_TRUE(cache.contains(1));
}

TEST(PdpPolicy, LoopAtProtectedDistanceHits)
{
    // Cyclic loop of 6 lines over a 1-set 2-way cache with PD >= 6:
    // protected lines survive a full lap; about 2/6 of accesses hit.
    Cache cache(tinyConfig(1, 2), makeSpdpB(8));
    uint64_t hits_before = 0;
    for (int lap = 0; lap < 200; ++lap)
        for (uint64_t line = 0; line < 6; ++line)
            cache.access(at(line));
    hits_before = cache.stats().hits;
    EXPECT_GT(hits_before, 300u); // ~2 hits per 6-access lap
    // LRU reference: zero hits on the same pattern.
    Cache lru_cache(tinyConfig(1, 2, false),
                    std::make_unique<LruPolicy>());
    for (int lap = 0; lap < 200; ++lap)
        for (uint64_t line = 0; line < 6; ++line)
            lru_cache.access(at(line));
    EXPECT_EQ(lru_cache.stats().hits, 0u);
}

TEST(PdpPolicy, NonBypassEvictsYoungestInserted)
{
    // Inclusive mode (Fig. 3c): with all lines protected, the inserted
    // (non-reused) line with the highest RPD is the victim.
    Cache cache(tinyConfig(1, 2, /*bypass=*/false), makeSpdpNb(100));
    cache.access(at(1));
    cache.access(at(1)); // line 1 reused
    cache.access(at(2)); // line 2 inserted (younger)
    const AccessOutcome out = cache.access(at(3));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, 2u);
}

TEST(PdpPolicy, NonBypassFallsBackToYoungestReused)
{
    Cache cache(tinyConfig(1, 2, false), makeSpdpNb(100));
    cache.access(at(1));
    cache.access(at(2));
    cache.access(at(1));
    cache.access(at(2)); // both reused; 2 promoted last (youngest)
    const AccessOutcome out = cache.access(at(3));
    EXPECT_EQ(out.evictedAddr, 2u);
}

TEST(PdpPolicy, QuantizedProtectionGuaranteesAtLeastPd)
{
    // n_c = 2 with d_max 256 -> S_d = 64: a PD of 70 must still protect
    // for at least 70 accesses (2+1 quanta).
    PdpParams params;
    params.dynamic = false;
    params.staticPd = 70;
    params.ncBits = 2;
    params.bypass = true;
    Cache cache(tinyConfig(1, 2), std::make_unique<PdpPolicy>(params));
    cache.access(at(1));
    for (uint64_t i = 0; i < 69; ++i)
        cache.access(at(100 + i));
    EXPECT_TRUE(cache.contains(1));
}

TEST(PdpPolicy, InsertWithPdOneVariantEvictsQuickly)
{
    PdpParams params;
    params.dynamic = false;
    params.staticPd = 100;
    params.insertWithPdOne = true;
    Cache cache(tinyConfig(1, 4), std::make_unique<PdpPolicy>(params));
    cache.access(at(1));
    cache.access(at(2));
    cache.access(at(3));
    cache.access(at(4));
    // All inserted with PD=1: next miss finds an unprotected victim.
    const AccessOutcome out = cache.access(at(5));
    EXPECT_FALSE(out.bypassed);
    EXPECT_TRUE(out.evictedValid);
}

TEST(PdpPolicy, DynamicRecomputeTracksStream)
{
    PdpParams params;
    params.recomputeInterval = 2000;
    params.firstRecompute = 2000;
    params.samplerWarmup = 0;
    params.minSamples = 50;
    params.minHits = 10;
    params.sampler = RdSamplerParams::full(64);
    auto policy = std::make_unique<PdpPolicy>(params);
    const PdpPolicy *pdp = policy.get();
    Cache cache(tinyConfig(64, 16), std::move(policy));
    // 64-set cache; loop with per-set RD of 20.
    const uint64_t lines = 20 * 64;
    for (uint64_t i = 0; i < 60000; ++i)
        cache.access(at(i % lines));
    ASSERT_FALSE(pdp->pdHistory().empty());
    EXPECT_GE(pdp->pd(), 20u);
    EXPECT_LE(pdp->pd(), 48u);
}

TEST(PdpPolicy, NamesFollowThePaper)
{
    EXPECT_EQ(makeSpdpB(64)->name(), "SPDP-B");
    EXPECT_EQ(makeSpdpNb(64)->name(), "SPDP-NB");
    EXPECT_EQ(makeDynamicPdp(3)->name(), "PDP-3");
    EXPECT_EQ(makeDynamicPdp(8, false)->name(), "PDP-8-NB");
}

TEST(RdProfiler, ExactDistances)
{
    RdProfiler profiler(1, 16);
    profiler.observe(0, 1);
    profiler.observe(0, 2);
    profiler.observe(0, 1); // RD 2
    EXPECT_EQ(profiler.rdd().at(1), 1u);
    EXPECT_EQ(profiler.accesses(), 3u);
}

TEST(RdProfiler, OverflowBucketBeyondDmax)
{
    RdProfiler profiler(1, 4);
    profiler.observe(0, 42);
    for (uint64_t i = 0; i < 10; ++i)
        profiler.observe(0, 100 + i);
    profiler.observe(0, 42); // RD 11 > 4
    EXPECT_EQ(profiler.rdd().overflow(), 1u);
}

TEST(RdProfiler, PeakDetection)
{
    RdProfiler profiler(1, 64);
    // Cycle 10 lines: every reuse at distance 10.
    for (int i = 0; i < 200; ++i)
        profiler.observe(0, i % 10);
    EXPECT_EQ(profiler.peakRd(), 10u);
    EXPECT_GT(profiler.coveredFraction(), 0.9);
}

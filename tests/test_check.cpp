/**
 * @file
 * Tests for the checking layer (src/check/): PDP_CHECK fail-fast and
 * count-and-report semantics, the InvariantAuditor's cadence machinery,
 * detection of deliberately injected state corruption in every audited
 * subsystem, and clean full-cadence sweeps of the paper configurations.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/occupancy_tracker.h"
#include "check/check.h"
#include "check/invariant_auditor.h"
#include "core/pdp_policy.h"
#include "partition/pdp_partition.h"
#include "partition/pipp.h"
#include "partition/ucp.h"
#include "policies/basic.h"
#include "policies/dip.h"
#include "policies/rrip.h"
#include "sim/multi_core_sim.h"
#include "sim/policy_factory.h"
#include "sim/single_core_sim.h"

using namespace pdp;
using check::CheckContext;
using check::FailMode;
using check::ScopedCountMode;

namespace
{

CacheConfig
smallConfig(uint32_t sets = 64, uint32_t ways = 4, bool bypass = true)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    cfg.ways = ways;
    cfg.allowBypass = bypass;
    return cfg;
}

/** Drive `count` demand accesses with some reuse through the cache. */
void
exercise(Cache &cache, uint64_t count, uint64_t working_set = 256,
         uint8_t thread = 0)
{
    for (uint64_t i = 0; i < count; ++i) {
        AccessContext ctx;
        ctx.lineAddr = (i * 17) % working_set;
        ctx.pc = 0x4000 + (i % 7) * 4;
        ctx.threadId = thread;
        cache.access(ctx);
    }
}

/** PDP parameters that fit the small test cache. */
PdpParams
smallPdpParams(unsigned nc_bits = 2)
{
    PdpParams params;
    params.ncBits = nc_bits;
    params.sampler.sampledSets = 16;
    return params;
}

} // namespace

// ---------------------------------------------------------------------------
// PDP_CHECK / CheckContext semantics
// ---------------------------------------------------------------------------

TEST(CheckMacro, FailFastThrowsWithSiteAndMessage)
{
    CheckContext::instance().reset();
    ASSERT_EQ(CheckContext::instance().mode(), FailMode::FailFast);
    try {
        const int value = 41;
        PDP_CHECK(value == 42, "value is ", value);
        FAIL() << "PDP_CHECK did not throw";
    } catch (const CheckFailure &failure) {
        const std::string what = failure.what();
        EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
        EXPECT_NE(what.find("value == 42"), std::string::npos) << what;
        EXPECT_NE(what.find("value is 41"), std::string::npos) << what;
    }
}

TEST(CheckMacro, PassingCheckHasNoEffect)
{
    CheckContext::instance().reset();
    PDP_CHECK(1 + 1 == 2, "arithmetic broke");
    EXPECT_EQ(CheckContext::instance().failureCount(), 0u);
}

TEST(CheckMacro, CountModeCollapsesRepeatedSites)
{
    CheckContext::instance().reset();
    {
        ScopedCountMode guard;
        for (int i = 0; i < 3; ++i)
            PDP_CHECK(i < 0, "iteration ", i);  // one site, three failures
        PDP_CHECK(false, "another site");
    }
    const auto &ctx = CheckContext::instance();
    EXPECT_EQ(ctx.failureCount(), 4u);
    ASSERT_EQ(ctx.failures().size(), 2u);
    EXPECT_EQ(ctx.failures()[0].count, 3u);
    EXPECT_EQ(ctx.failures()[1].count, 1u);
    EXPECT_NE(ctx.report().find("another site"), std::string::npos);
    CheckContext::instance().reset();
    EXPECT_EQ(CheckContext::instance().failureCount(), 0u);
}

TEST(CheckMacro, ScopedCountModeRestoresFailFast)
{
    CheckContext::instance().reset();
    {
        ScopedCountMode guard;
        EXPECT_EQ(CheckContext::instance().mode(), FailMode::Count);
    }
    EXPECT_EQ(CheckContext::instance().mode(), FailMode::FailFast);
}

// ---------------------------------------------------------------------------
// Auditor mechanics
// ---------------------------------------------------------------------------

TEST(InvariantAuditor, CleanCacheProducesNoViolations)
{
    Cache cache(smallConfig(), std::make_unique<LruPolicy>());
    exercise(cache, 2000);
    InvariantReporter reporter;
    cache.auditInvariants(reporter);
    EXPECT_TRUE(reporter.clean()) << reporter.report();
}

TEST(InvariantAuditor, CadenceTicksOnEveryAccess)
{
    Cache cache(smallConfig(), std::make_unique<LruPolicy>());
    InvariantAuditor::Options options;
    options.cadence = 1;
    options.fullEvery = 0;
    InvariantAuditor auditor(options);
    auditor.watchCache(cache);
    cache.setAuditor(&auditor);
    exercise(cache, 500);
    cache.setAuditor(nullptr);
    EXPECT_EQ(auditor.accessesSeen(), 500u);
    EXPECT_EQ(auditor.auditsRun(), 500u);
    EXPECT_EQ(auditor.totalViolations(), 0u);
}

TEST(InvariantAuditor, CoarserCadenceAuditsLess)
{
    Cache cache(smallConfig(), std::make_unique<LruPolicy>());
    InvariantAuditor::Options options;
    options.cadence = 64;
    options.fullEvery = 0;
    InvariantAuditor auditor(options);
    auditor.watchCache(cache);
    cache.setAuditor(&auditor);
    exercise(cache, 640);
    cache.setAuditor(nullptr);
    EXPECT_EQ(auditor.auditsRun(), 10u);
}

TEST(InvariantAuditor, FailFastOptionThrowsOnCorruption)
{
    auto policy = std::make_unique<RripPolicy>(RripPolicy::Mode::Srrip);
    RripPolicy *rrip = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 200);
    rrip->debugSetRrpv(0, 0, 99);

    InvariantAuditor::Options options;
    options.failFast = true;
    InvariantAuditor auditor(options);
    auditor.watchCache(cache);
    EXPECT_THROW(auditor.auditNow(), CheckFailure);
}

TEST(InvariantAuditor, CountModeAccumulatesAcrossPasses)
{
    auto policy = std::make_unique<RripPolicy>(RripPolicy::Mode::Srrip);
    RripPolicy *rrip = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 200);
    rrip->debugSetRrpv(0, 0, 99);

    InvariantAuditor auditor;
    auditor.watchCache(cache);
    auditor.auditNow();
    const uint64_t first = auditor.totalViolations();
    EXPECT_GT(first, 0u);
    auditor.auditNow();
    EXPECT_GT(auditor.totalViolations(), first);
    EXPECT_TRUE(auditor.lastReport().has("rrip.rrpv_range"))
        << auditor.lastReport().report();
}

// ---------------------------------------------------------------------------
// Injected corruption is detected, one subsystem at a time
// ---------------------------------------------------------------------------

TEST(InjectedViolation, PdpOversizedRpd)
{
    auto policy = std::make_unique<PdpPolicy>(smallPdpParams(2));
    PdpPolicy *pdp = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 500);

    InvariantReporter clean;
    cache.auditInvariants(clean);
    ASSERT_TRUE(clean.clean()) << clean.report();

    pdp->debugSetRpd(3, 1, 200);  // n_c = 2 caps the RPD at 3
    InvariantReporter reporter;
    cache.auditInvariants(reporter);
    EXPECT_TRUE(reporter.has("pdp.rpd_range")) << reporter.report();
}

TEST(InjectedViolation, RddConservationBroken)
{
    auto policy = std::make_unique<PdpPolicy>(smallPdpParams(8));
    PdpPolicy *pdp = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 500);

    // Hits without matching sampled accesses break conservation even
    // after allowing the sampler-FIFO carry-over slack.
    pdp->debugCounterArray().addBucket(0, 60'000, 0);
    InvariantReporter reporter;
    cache.auditGlobalInvariants(reporter);
    EXPECT_TRUE(reporter.has("rdd.conservation")) << reporter.report();
}

TEST(InjectedViolation, RripRrpvOutOfRange)
{
    auto policy = std::make_unique<RripPolicy>(RripPolicy::Mode::Srrip);
    RripPolicy *rrip = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 300);

    rrip->debugSetRrpv(5, 2, 17);  // 2-bit RRPV caps at 3
    InvariantReporter reporter;
    cache.auditInvariants(reporter);
    EXPECT_TRUE(reporter.has("rrip.rrpv_range")) << reporter.report();
}

TEST(InjectedViolation, DipPselOutOfRange)
{
    auto policy = makeDip();
    InsertionLruPolicy *dip = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 300);

    dip->debugForcePsel(4096);  // PSEL is 10 bits
    InvariantReporter reporter;
    cache.auditGlobalInvariants(reporter);
    EXPECT_TRUE(reporter.has("dueling.psel_range")) << reporter.report();
}

TEST(InjectedViolation, CacheStatsIdentityBroken)
{
    Cache cache(smallConfig(), std::make_unique<LruPolicy>());
    exercise(cache, 300);

    cache.debugStats().hits += 3;  // hits + misses no longer == accesses
    InvariantReporter reporter;
    cache.auditGlobalInvariants(reporter);
    EXPECT_TRUE(reporter.has("cache.stats.identity")) << reporter.report();
}

TEST(InjectedViolation, PartitionPdOutOfRange)
{
    auto policy = makePdpPartition(2, 3);
    PdpPartitionPolicy *part = policy.get();
    Cache cache(CacheConfig::paperLlc(2), std::move(policy));
    exercise(cache, 400, 4096, 0);
    exercise(cache, 400, 4096, 1);

    part->debugSetThreadPd(1, 0);  // PDs live in [1, d_max]
    InvariantReporter reporter;
    cache.auditGlobalInvariants(reporter);
    EXPECT_TRUE(reporter.has("part.pd_range")) << reporter.report();
}

TEST(InjectedViolation, PippOrderNotAPermutation)
{
    auto policy = std::make_unique<PippPolicy>(2);
    PippPolicy *pipp = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 300, 256, 0);
    exercise(cache, 300, 256, 1);

    pipp->debugSetOrder(2, 0, 1);  // way 1 now appears twice in set 2
    InvariantReporter reporter;
    cache.auditInvariants(reporter);
    EXPECT_TRUE(reporter.has("pipp.order_perm")) << reporter.report();
}

TEST(InjectedViolation, UcpAllocationOutOfRange)
{
    auto policy = std::make_unique<UcpPolicy>(2);
    UcpPolicy *ucp = policy.get();
    Cache cache(smallConfig(), std::move(policy));
    exercise(cache, 300, 256, 0);
    exercise(cache, 300, 256, 1);

    ucp->debugSetAllocation(0, 99);  // a 4-way set cannot grant 99 ways
    InvariantReporter reporter;
    cache.auditGlobalInvariants(reporter);
    EXPECT_TRUE(reporter.has("ucp.alloc_range")) << reporter.report();
}

TEST(InjectedViolation, OccupancyLastEventAheadOfCounter)
{
    Cache cache(smallConfig(), std::make_unique<LruPolicy>());
    OccupancyTracker tracker(cache);
    cache.setObserver(&tracker);
    exercise(cache, 500);
    cache.setObserver(nullptr);

    InvariantAuditor auditor;
    auditor.watchCache(cache);
    auditor.watchOccupancy(cache, tracker, /*cross_check_stats=*/true);
    auditor.auditNow();
    ASSERT_EQ(auditor.totalViolations(), 0u)
        << auditor.lastReport().report();

    tracker.debugSetLastEvent(0, 0, 1u << 30);
    auditor.auditNow();
    EXPECT_TRUE(auditor.lastReport().has("occ.last_event"))
        << auditor.lastReport().report();
}

// ---------------------------------------------------------------------------
// Clean sweeps of the paper configurations under the auditor
// ---------------------------------------------------------------------------

TEST(AuditedSweep, Fig10ConfigPdpMaxCadence)
{
    // The Fig. 10 single-core setup (paper L2 + 2 MB 16-way LLC) under
    // dynamic PDP-3, audited on every LLC access.
    SimConfig cfg = SimConfig{}.scaled(0.02);
    cfg.auditEvery = 1;
    cfg.auditFailFast = true;  // die loudly if any invariant breaks
    const SimResult result = runSingleCore("436.cactusADM", "PDP-3", cfg);
    EXPECT_GT(result.auditsRun, 0u);
    EXPECT_EQ(result.auditViolations, 0u);
    EXPECT_GT(result.llcAccesses, 0u);
}

TEST(AuditedSweep, Fig10PolicyPanelMaxCadence)
{
    // Every Fig. 10 policy, shorter runs, still audited on every access.
    SimConfig cfg = SimConfig{}.scaled(0.004);
    cfg.auditEvery = 1;
    cfg.auditFailFast = true;
    for (const std::string &policy : fig10PolicyNames()) {
        const SimResult result = runSingleCore("429.mcf", policy, cfg);
        EXPECT_EQ(result.auditViolations, 0u) << policy;
        EXPECT_GT(result.auditsRun, 0u) << policy;
    }
}

TEST(AuditedSweep, MultiCoreSharedPoliciesAudited)
{
    WorkloadSpec workload;
    workload.benchmarks = {"403.gcc", "429.mcf"};
    MultiCoreConfig cfg;
    cfg.cores = 2;
    cfg.accessesPerThread = 12'000;
    cfg.warmupPerThread = 4'000;
    cfg.auditEvery = 16;
    cfg.auditFailFast = true;
    for (const std::string &policy :
         {std::string("TA-DRRIP"), std::string("UCP"), std::string("PIPP"),
          std::string("PDP-2")}) {
        const MultiCoreResult result =
            runMultiCore(workload, policy, cfg);
        EXPECT_EQ(result.auditViolations, 0u) << policy;
        EXPECT_GT(result.auditsRun, 0u) << policy;
    }
}

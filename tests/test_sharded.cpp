/**
 * @file
 * Tests for intra-job parallelism: the set-sharded LLC driver
 * (cache/shard_view.h + sim/sharded_sim.h), the multi-config lockstep
 * sweep driver (sim/lockstep_sweep.h), and the runner's multi-record
 * job fan-out (Job::runMany).  The load-bearing property throughout is
 * byte-identity: sharded and lockstep execution must be invisible in
 * the results — the same SimResult fields, the same deterministic
 * dumps — no matter how many threads did the work.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "cache/shard_view.h"
#include "core/pdp_policy.h"
#include "runner/results_sink.h"
#include "runner/suites.h"
#include "runner/thread_pool.h"
#include "sim/lockstep_sweep.h"
#include "sim/policy_factory.h"
#include "sim/sharded_sim.h"
#include "trace/spec_suite.h"

using namespace pdp;
using namespace pdp::runner;

namespace
{

SimConfig
quickConfig(unsigned shards = 1)
{
    SimConfig config;
    config.accesses = 120'000;
    config.warmup = 30'000;
    config.llcShards = shards;
    return config;
}

/** Every SimResult field the deterministic dump carries.  Doubles are
 *  compared exactly: both sides must run the identical arithmetic. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcBypasses, b.llcBypasses);
    EXPECT_EQ(a.bypassFraction, b.bypassFraction);
    EXPECT_EQ(a.auditsRun, b.auditsRun);
    EXPECT_EQ(a.auditViolations, b.auditViolations);
}

SimResult
sequentialRun(const std::string &bench, const PolicyFactory &makePol,
              const SimConfig &config)
{
    auto gen = SpecSuite::make(bench, seedFor(bench));
    Hierarchy hierarchy(config.hierarchy, makePol());
    return runSingleCore(*gen, hierarchy, config);
}

} // namespace

// ---------------------------------------------------------------------------
// ShardPlan routing.

TEST(ShardPlanTest, RoutingIsABijectionOverSets)
{
    const CacheConfig llc = CacheConfig::paperLlc();
    for (unsigned requested : {1u, 2u, 4u, 8u}) {
        const ShardPlan plan = ShardPlan::make(llc, requested);
        EXPECT_EQ(plan.shards, requested);
        std::vector<unsigned> seen(llc.numSets(), 0);
        for (uint32_t set = 0; set < llc.numSets(); ++set) {
            const uint32_t shard = plan.shardOf(set);
            const uint32_t local = plan.localSet(set);
            ASSERT_LT(shard, plan.shards);
            ASSERT_LT(local, llc.numSets() / plan.shards);
            // (shard, local) -> set is the inverse mapping.
            EXPECT_EQ((shard << plan.localSetBits) | local, set);
            ++seen[set];
        }
        for (unsigned count : seen)
            EXPECT_EQ(count, 1u);
    }
}

TEST(ShardPlanTest, NonPowerOfTwoRequestRoundsDown)
{
    const CacheConfig llc = CacheConfig::paperLlc();
    EXPECT_EQ(ShardPlan::make(llc, 3).shards, 2u);
    EXPECT_EQ(ShardPlan::make(llc, 7).shards, 4u);
    EXPECT_EQ(ShardPlan::make(llc, 0).shards, 1u);
}

TEST(ShardPlanTest, ShardConfigSplitsTheGeometry)
{
    const CacheConfig llc = CacheConfig::paperLlc();
    const ShardPlan plan = ShardPlan::make(llc, 4);
    const CacheConfig shard = plan.shardConfig(llc, 1);
    EXPECT_EQ(shard.numSets(), llc.numSets() / 4);
    EXPECT_EQ(shard.ways, llc.ways);
    EXPECT_EQ(shard.lineBytes, llc.lineBytes);
    EXPECT_TRUE(shard.valid());
}

// ---------------------------------------------------------------------------
// Set-locality declarations.

TEST(SetLocalTest, OnlyShardablePoliciesDeclareIt)
{
    EXPECT_TRUE(makePolicy("LRU")->setLocal());
    EXPECT_TRUE(makeSpdpB(64)->setLocal());
    EXPECT_TRUE(makeSpdpNb(32)->setLocal());
    // Global state (dueling sets, samplers, RNGs) forbids sharding.
    EXPECT_FALSE(makePolicy("DIP")->setLocal());
    EXPECT_FALSE(makePolicy("DRRIP")->setLocal());
    EXPECT_FALSE(makePolicy("PDP-3")->setLocal());
    EXPECT_FALSE(makePolicy("SDP")->setLocal());
}

// ---------------------------------------------------------------------------
// Sharded driver byte-identity.

TEST(ShardedSimTest, ByteIdenticalLru)
{
    const auto makePol = [] { return makePolicy("LRU"); };
    const SimResult plain =
        sequentialRun("450.soplex", makePol, quickConfig());
    auto gen = SpecSuite::make("450.soplex", seedFor("450.soplex"));
    const SimResult sharded =
        runSingleCoreSharded(*gen, quickConfig(4), makePol);
    expectSameResult(sharded, plain);
    EXPECT_GT(plain.llcAccesses, 0u);
}

TEST(ShardedSimTest, ByteIdenticalStaticPdp)
{
    const auto makePol = [] { return makeSpdpB(64); };
    const SimResult plain =
        sequentialRun("436.cactusADM", makePol, quickConfig());
    auto gen = SpecSuite::make("436.cactusADM", seedFor("436.cactusADM"));
    const SimResult sharded =
        runSingleCoreSharded(*gen, quickConfig(4), makePol);
    expectSameResult(sharded, plain);
    EXPECT_GT(plain.llcBypasses, 0u);
}

TEST(ShardedSimTest, DynamicPolicyFallsBackToSequential)
{
    // PDP-3 samples reuse distances globally, so canRunSharded must say
    // no — and the fallback must still produce the sequential result.
    const auto makePol = [] { return makePolicy("PDP-3"); };
    EXPECT_FALSE(canRunSharded(quickConfig(4), *makePol()));

    const SimResult plain =
        sequentialRun("450.soplex", makePol, quickConfig());
    auto gen = SpecSuite::make("450.soplex", seedFor("450.soplex"));
    const SimResult sharded =
        runSingleCoreSharded(*gen, quickConfig(4), makePol);
    expectSameResult(sharded, plain);
}

TEST(ShardedSimTest, AutoDispatchHonorsShardCount)
{
    const auto makePol = [] { return makePolicy("LRU"); };
    const SimResult plain =
        sequentialRun("429.mcf", makePol, quickConfig());
    for (unsigned shards : {1u, 2u, 8u}) {
        auto gen = SpecSuite::make("429.mcf", seedFor("429.mcf"));
        const SimResult result =
            runSingleCoreAuto(*gen, quickConfig(shards), makePol);
        expectSameResult(result, plain);
    }
}

// ---------------------------------------------------------------------------
// Lockstep sweep driver.

TEST(LockstepSweepTest, MatchesIndependentRuns)
{
    const std::vector<std::pair<std::string, PolicyFactory>> cells = {
        {"DIP", [] { return makePolicy("DIP"); }},
        {"DRRIP", [] { return makePolicy("DRRIP"); }},
        {"SPDP-B:32", [] { return makeSpdpB(32); }},
        {"SPDP-B:64", [] { return makeSpdpB(64); }},
        {"PDP-3", [] { return makePolicy("PDP-3"); }},
    };
    const SimConfig config = quickConfig();

    std::vector<PolicyFactory> factories;
    for (const auto &cell : cells)
        factories.push_back(cell.second);
    auto gen = SpecSuite::make("450.soplex", seedFor("450.soplex"));
    const std::vector<SimResult> lockstep =
        runSingleCoreLockstep(*gen, config, factories, /*threads=*/3);

    ASSERT_EQ(lockstep.size(), cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
        const SimResult plain =
            sequentialRun("450.soplex", cells[c].second, config);
        expectSameResult(lockstep[c], plain);
    }
}

TEST(LockstepSweepTest, ThreadCountDoesNotChangeResults)
{
    std::vector<PolicyFactory> factories;
    for (uint32_t pd : {16u, 64u, 256u})
        factories.push_back([pd] { return makeSpdpB(pd); });
    const SimConfig config = quickConfig();

    auto genOne = SpecSuite::make("429.mcf", seedFor("429.mcf"));
    const auto one = runSingleCoreLockstep(*genOne, config, factories, 1);
    auto genFour = SpecSuite::make("429.mcf", seedFor("429.mcf"));
    const auto four = runSingleCoreLockstep(*genFour, config, factories, 4);

    ASSERT_EQ(one.size(), four.size());
    for (size_t c = 0; c < one.size(); ++c)
        expectSameResult(one[c], four[c]);
}

TEST(LockstepSweepTest, RejectsGlobalOrderObservers)
{
    std::vector<PolicyFactory> factories = {[] { return makePolicy("LRU"); }};
    SimConfig config = quickConfig();
    config.telemetry.enabled = true;
    auto gen = SpecSuite::make("429.mcf", seedFor("429.mcf"));
    EXPECT_THROW(runSingleCoreLockstep(*gen, config, factories),
                 std::exception);
}

// ---------------------------------------------------------------------------
// Runner fan-out: Job::runMany.

TEST(ThreadPoolExecutorMany, FlattensGroupsInInputOrder)
{
    std::vector<Job> jobs;
    Job before;
    before.key = "a/before";
    before.seed = seedFor(before.key);
    before.run = [](const JobContext &) { return JobOutcome{}; };
    jobs.push_back(std::move(before));

    Job group;
    group.key = "b/group";
    group.seed = seedFor(group.key);
    group.runMany = [](const JobContext &) {
        std::vector<KeyedOutcome> outcomes(3);
        for (int c = 0; c < 3; ++c) {
            outcomes[c].key = "b/cell" + std::to_string(c);
            outcomes[c].outcome.metrics["cell"] = c;
        }
        return outcomes;
    };
    jobs.push_back(std::move(group));

    Job after;
    after.key = "c/after";
    after.seed = seedFor(after.key);
    after.run = [](const JobContext &) { return JobOutcome{}; };
    jobs.push_back(std::move(after));

    const auto records = ThreadPoolExecutor().run(jobs);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[0].key, "a/before");
    EXPECT_EQ(records[1].key, "b/cell0");
    EXPECT_EQ(records[2].key, "b/cell1");
    EXPECT_EQ(records[3].key, "b/cell2");
    EXPECT_EQ(records[4].key, "c/after");
    for (const JobRecord &record : records)
        EXPECT_EQ(record.status, JobStatus::Ok);
    // Expanded records inherit the group's seed.
    EXPECT_EQ(records[1].seed, seedFor("b/group"));
    EXPECT_EQ(records[1].outcome.metrics.at("cell"), 0.0);
    EXPECT_EQ(records[3].outcome.metrics.at("cell"), 2.0);
}

TEST(ThreadPoolExecutorMany, ThrowingGroupBecomesOneFailedRecord)
{
    Job job;
    job.key = "boom";
    job.seed = seedFor(job.key);
    job.runMany = [](const JobContext &) -> std::vector<KeyedOutcome> {
        throw std::runtime_error("injected group failure");
    };
    const auto records = ThreadPoolExecutor().run({job});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].key, "boom");
    EXPECT_EQ(records[0].status, JobStatus::Failed);
    EXPECT_NE(records[0].error.find("injected group failure"),
              std::string::npos);
}

TEST(ThreadPoolExecutorMany, SettingBothCallablesIsAFailure)
{
    Job job;
    job.key = "both";
    job.run = [](const JobContext &) { return JobOutcome{}; };
    job.runMany = [](const JobContext &) {
        return std::vector<KeyedOutcome>(1);
    };
    const auto records = ThreadPoolExecutor().run({job});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].status, JobStatus::Failed);
}

TEST(ThreadPoolExecutorMany, EmptyGroupIsAFailure)
{
    Job job;
    job.key = "empty";
    job.runMany = [](const JobContext &) {
        return std::vector<KeyedOutcome>();
    };
    const auto records = ThreadPoolExecutor().run({job});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].status, JobStatus::Failed);
}

// ---------------------------------------------------------------------------
// Suite-level byte-identity: lockstep grids dump the same documents.

namespace
{

std::string
suiteDump(const std::string &suiteName, const SuiteOptions &options)
{
    const Suite *suite = findSuite(suiteName);
    EXPECT_NE(suite, nullptr);
    std::vector<Job> jobs = suite->buildJobs(options);
    std::erase_if(jobs, [&](const Job &job) {
        return job.key.find(options.filter) == std::string::npos;
    });
    EXPECT_FALSE(jobs.empty());
    ResultsSink sink(suiteName);
    ExecutorOptions eopts;
    eopts.workers = 2;
    eopts.onComplete = [&sink](const JobRecord &r) { sink.add(r); };
    ThreadPoolExecutor(eopts).run(jobs);
    return sink.toJson(/*includeVolatile=*/false).dump(2);
}

} // namespace

TEST(SuiteLockstepTest, Fig4LockstepDumpMatchesIndependent)
{
    SuiteOptions independent;
    independent.scale = 0.02;
    independent.filter = "fig4/429.mcf/";
    SuiteOptions lockstep = independent;
    lockstep.lockstep = true;

    const std::string a = suiteDump("fig4_static_pdp", independent);
    const std::string b = suiteDump("fig4_static_pdp", lockstep);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"llc_misses\""), std::string::npos);
}

TEST(SuiteLockstepTest, Fig10ShardedDumpMatchesPlain)
{
    SuiteOptions plain;
    plain.scale = 0.02;
    plain.filter = "fig10/429.mcf/SPDP-B:";
    SuiteOptions sharded = plain;
    sharded.shards = 4;

    const std::string a = suiteDump("fig10_single_core", plain);
    const std::string b = suiteDump("fig10_single_core", sharded);
    EXPECT_EQ(a, b);
}

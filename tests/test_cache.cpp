/**
 * @file
 * Unit tests for the cache substrate: geometry, hit/miss/evict semantics,
 * bypass handling, per-thread stats, the two-level hierarchy and the
 * occupancy tracker.
 */

#include <gtest/gtest.h>

#include <random>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "cache/occupancy_tracker.h"
#include "check/invariant_auditor.h"
#include "policies/basic.h"
#include "policies/replacement_policy.h"

using namespace pdp;

namespace
{

CacheConfig
tinyConfig(uint32_t sets = 4, uint32_t ways = 2, bool bypass = false)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    cfg.ways = ways;
    cfg.allowBypass = bypass;
    return cfg;
}

AccessContext
at(uint64_t line, uint8_t thread = 0, bool write = false)
{
    AccessContext ctx;
    ctx.lineAddr = line;
    ctx.threadId = thread;
    ctx.isWrite = write;
    return ctx;
}

/** A policy that always bypasses once the set is full. */
class AlwaysBypassPolicy : public ReplacementPolicy
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "AlwaysBypass";
        return n;
    }
    bool usesBypass() const override { return true; }
    void onHit(const AccessContext &, int) override {}
    int selectVictim(const AccessContext &) override { return kBypass; }
    void onInsert(const AccessContext &, int) override {}
};

} // namespace

TEST(CacheConfig, GeometryDerivation)
{
    const CacheConfig llc = CacheConfig::paperLlc();
    EXPECT_EQ(llc.numSets(), 2048u);
    EXPECT_EQ(llc.numLines(), 32768u);
    EXPECT_TRUE(llc.valid());

    const CacheConfig l2 = CacheConfig::paperL2();
    EXPECT_EQ(l2.numSets(), 512u);
    EXPECT_EQ(l2.ways, 8u);
}

TEST(CacheConfig, ScaledSharedLlc)
{
    const CacheConfig shared = CacheConfig::paperLlc(16);
    EXPECT_EQ(shared.sizeBytes, 32ull * 1024 * 1024);
    EXPECT_EQ(shared.numSets(), 32768u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    EXPECT_FALSE(cache.access(at(0x100)).hit);
    EXPECT_TRUE(cache.access(at(0x100)).hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, FillsInvalidWaysFirst)
{
    Cache cache(tinyConfig(4, 2), std::make_unique<LruPolicy>());
    // Two lines mapping to set 0 fit side by side.
    EXPECT_FALSE(cache.access(at(0)).hit);
    EXPECT_FALSE(cache.access(at(4)).hit);
    EXPECT_TRUE(cache.access(at(0)).hit);
    EXPECT_TRUE(cache.access(at(4)).hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(tinyConfig(4, 2), std::make_unique<LruPolicy>());
    cache.access(at(0));
    cache.access(at(4));
    cache.access(at(0));                       // 4 is now LRU
    const AccessOutcome out = cache.access(at(8));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, 4u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4));
}

TEST(Cache, ReusedBitTracksHits)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    cache.access(at(0));
    const AccessOutcome first = cache.access(at(0));
    EXPECT_TRUE(cache.isReused(0, first.way));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache(tinyConfig(4, 1), std::make_unique<LruPolicy>());
    cache.access(at(0, 0, /*write=*/true));
    const AccessOutcome out = cache.access(at(4));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(cache.stats().evictionsDirty, 1u);
}

TEST(Cache, BypassPathCounts)
{
    auto cfg = tinyConfig(4, 1, /*bypass=*/true);
    Cache cache(cfg, std::make_unique<AlwaysBypassPolicy>());
    cache.access(at(0));                       // fills invalid way
    const AccessOutcome out = cache.access(at(4));
    EXPECT_TRUE(out.bypassed);
    EXPECT_FALSE(cache.contains(4));
    EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(Cache, BypassOnInclusiveCacheThrows)
{
    Cache cache(tinyConfig(4, 1, /*bypass=*/false),
                std::make_unique<AlwaysBypassPolicy>());
    cache.access(at(0));
    EXPECT_THROW(cache.access(at(4)), std::logic_error);
}

TEST(Cache, PerThreadStats)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    cache.access(at(0, 1));
    cache.access(at(0, 1));
    cache.access(at(64, 2));
    EXPECT_EQ(cache.stats().threadAccesses[1], 2u);
    EXPECT_EQ(cache.stats().threadHits[1], 1u);
    EXPECT_EQ(cache.stats().threadMisses[2], 1u);
}

TEST(Cache, ThreadWaysInSet)
{
    Cache cache(tinyConfig(4, 2), std::make_unique<LruPolicy>());
    cache.access(at(0, 3));
    cache.access(at(4, 5));
    EXPECT_EQ(cache.threadWaysInSet(0, 3), 1u);
    EXPECT_EQ(cache.threadWaysInSet(0, 5), 1u);
    EXPECT_EQ(cache.threadWaysInSet(0, 7), 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    cache.access(at(0x40));
    EXPECT_TRUE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_FALSE(cache.invalidate(0x40));
}

TEST(Cache, WritebackAccessesSeparate)
{
    Cache cache(tinyConfig(), std::make_unique<LruPolicy>());
    AccessContext wb = at(0x10);
    wb.isWriteback = true;
    cache.access(wb);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.stats().writebackAccesses, 1u);
    EXPECT_TRUE(cache.contains(0x10)); // writeback miss allocates
}

TEST(Hierarchy, L2HitDoesNotReachLlc)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, std::make_unique<LruPolicy>());
    Access a;
    a.lineAddr = 0x1234;
    EXPECT_EQ(h.access(a).level, HitLevel::Memory);
    EXPECT_EQ(h.access(a).level, HitLevel::L2);
    // The second access must not hit the LLC stats.
    EXPECT_EQ(h.llc().stats().accesses, 1u);
}

TEST(Hierarchy, LlcHitAfterL2Eviction)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, std::make_unique<LruPolicy>());
    Access a;
    a.lineAddr = 0;
    h.access(a);
    // Thrash the L2 set of line 0 (L2 has 512 sets, 8 ways).
    for (uint64_t i = 1; i <= 8; ++i) {
        Access b;
        b.lineAddr = i * 512;
        h.access(b);
    }
    EXPECT_EQ(h.access(a).level, HitLevel::Llc);
}

TEST(Hierarchy, DirtyL2VictimWritesBackToLlc)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, std::make_unique<LruPolicy>());
    Access a;
    a.lineAddr = 0;
    a.isWrite = true;
    h.access(a);
    const uint64_t wb_before = h.llc().stats().writebackAccesses;
    for (uint64_t i = 1; i <= 8; ++i) {
        Access b;
        b.lineAddr = i * 512;
        h.access(b);
    }
    EXPECT_GT(h.llc().stats().writebackAccesses, wb_before);
}

TEST(OccupancyTracker, ClassifiesEvents)
{
    CacheConfig cfg = tinyConfig(4, 2);
    Cache cache(cfg, std::make_unique<LruPolicy>());
    OccupancyTracker tracker(cache, /*threshold=*/2);
    cache.setObserver(&tracker);

    cache.access(at(0));  // insert
    cache.access(at(0));  // hit after 1 access
    cache.access(at(4));  // insert
    cache.access(at(8));  // evicts line 0 (LRU) after 2 accesses
    const OccupancyBreakdown &b = tracker.breakdown();
    EXPECT_EQ(b.hits, 1u);
    EXPECT_EQ(b.evictsShort + b.evictsLong, 1u);
    EXPECT_GT(b.totalOccupancy(), 0u);
}

TEST(OccupancyTracker, ConservationHoldsUnderRandomizedTraffic)
{
    CacheConfig cfg = tinyConfig(8, 4);
    Cache cache(cfg, std::make_unique<LruPolicy>());
    OccupancyTracker tracker(cache, /*threshold=*/8);
    cache.setObserver(&tracker);

    // Pre-fill every way so each later insert is an insert-with-evict,
    // then zero tracker and cache stats at the same instant (the
    // precondition of the cross-stats audit).
    for (uint64_t line = 0; line < 8u * 4u; ++line)
        cache.access(at(line));
    tracker.reset();
    cache.resetStats();

    // Random traffic over 2x the resident footprint: a mix of hits,
    // misses-with-evict and repeated promotions, in random order.
    std::mt19937_64 rng(20120217);
    for (int i = 0; i < 20'000; ++i)
        cache.access(at(rng() % (8u * 4u * 2u)));

    // With every set full, every demand access is a promotion, a bypass
    // or an insert-with-evict, so the per-set access counters conserve
    // the Fig. 5a event breakdown exactly.
    const OccupancyBreakdown &b = tracker.breakdown();
    EXPECT_EQ(tracker.counterSum(),
              b.hits + b.bypasses + b.evictsShort + b.evictsLong);
    EXPECT_EQ(tracker.counterSum(), b.totalEvents());

    InvariantReporter reporter;
    tracker.auditGlobal(reporter);
    tracker.auditInvariants(cache, /*cross_check_stats=*/true, reporter);
    EXPECT_TRUE(reporter.clean()) << reporter.report();
}

TEST(OccupancyTracker, IncrementalAuditCoversConservation)
{
    CacheConfig cfg = tinyConfig(4, 2);
    Cache cache(cfg, std::make_unique<LruPolicy>());
    OccupancyTracker tracker(cache);
    cache.setObserver(&tracker);

    InvariantAuditor::Options opts;
    opts.cadence = 1;
    opts.fullEvery = 0; // incremental passes only
    InvariantAuditor auditor(opts);
    auditor.watchCache(cache);
    auditor.watchOccupancy(cache, tracker);

    std::mt19937_64 rng(7);
    for (int i = 0; i < 256; ++i) {
        cache.access(at(rng() % 16));
        auditor.onAccess();
    }
    EXPECT_EQ(auditor.auditsRun(), 256u);
    EXPECT_EQ(auditor.totalViolations(), 0u) << auditor.lastReport().report();
}

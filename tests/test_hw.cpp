/**
 * @file
 * Tests for the hardware models: the overhead accounting (absolute
 * values, orderings, scaling with cores) and structural properties of
 * the PD-compute microprogram.
 */

#include <gtest/gtest.h>

#include "hw/overhead_model.h"
#include "hw/pdproc.h"

using namespace pdp;

TEST(Overhead, LlcBitsIncludeTags)
{
    const OverheadModel model(CacheConfig::paperLlc());
    // 2 MB data = 16 Mbit; tags add a few percent on top.
    EXPECT_GT(model.llcBits(), 16ull * 1024 * 1024);
    EXPECT_LT(model.llcBits(), 20ull * 1024 * 1024);
}

TEST(Overhead, NcOrderingHolds)
{
    const OverheadModel model(CacheConfig::paperLlc());
    EXPECT_LT(model.report("PDP-2").bits, model.report("PDP-3").bits);
    EXPECT_LT(model.report("PDP-3").bits, model.report("PDP-8").bits);
}

TEST(Overhead, SrripIsTheCheapestAdaptivePolicy)
{
    const OverheadModel model(CacheConfig::paperLlc());
    EXPECT_LT(model.report("SRRIP").bits, model.report("DIP").bits);
    EXPECT_LT(model.report("DRRIP").bits, model.report("SDP").bits);
}

TEST(Overhead, PartitionedPdpScalesWithThreads)
{
    const OverheadModel model(CacheConfig::paperLlc(16));
    const uint64_t four = model.report("PDP-part:4").bits;
    const uint64_t sixteen = model.report("PDP-part:16").bits;
    EXPECT_GT(sixteen, four);
    // Still manageable: ~1% of the 32 MB LLC.
    EXPECT_LT(model.report("PDP-part:16").percentOfLlc, 1.5);
}

TEST(Overhead, StandardReportsCoverTheRoster)
{
    const OverheadModel model(CacheConfig::paperLlc());
    const auto reports = model.standardReports();
    EXPECT_GE(reports.size(), 12u);
    for (const auto &r : reports) {
        EXPECT_GT(r.bits, 0u) << r.policy;
        EXPECT_GT(r.percentOfLlc, 0.0) << r.policy;
    }
}

TEST(PdProcProgram, SixteenInstructionBudget)
{
    // The paper's processor executes "sixteen integer instructions";
    // the microprogram must use only opcodes from that ISA and stay
    // compact (it fits a small PROM).
    const auto program = buildArgmaxProgram(64, 2, 16);
    EXPECT_LT(program.size(), 64u);
    bool has_mult = false, has_div = false, has_branch = false;
    for (const Instr &in : program) {
        has_mult |= in.op == Op::Mult8;
        has_div |= in.op == Op::Div32;
        has_branch |= in.op == Op::Bne || in.op == Op::Bge;
    }
    EXPECT_TRUE(has_mult);
    EXPECT_TRUE(has_div);
    EXPECT_TRUE(has_branch);
}

TEST(PdProcProgram, CycleCostDominatedByDivide)
{
    // One div32 (33 cycles) per bucket dominates, as in the paper's
    // "takes tens of cycles to compute E(d_p) for one d_p".
    RdCounterArray rdd(256, 4);
    for (uint32_t d = 1; d <= 256; ++d)
        rdd.recordHit(d);
    for (int i = 0; i < 1000; ++i)
        rdd.recordAccess();
    const PdProcResult r = pdprocBestPd(rdd);
    const double per_bucket =
        static_cast<double>(r.cycles) / rdd.numBuckets();
    EXPECT_GT(per_bucket, 40.0);
    EXPECT_LT(per_bucket, 150.0);
}

TEST(PdProcProgram, DeterministicAcrossRuns)
{
    RdCounterArray rdd(256, 4);
    for (uint32_t d = 1; d <= 200; ++d)
        rdd.recordHit(d);
    for (int i = 0; i < 500; ++i)
        rdd.recordAccess();
    const PdProcResult a = pdprocBestPd(rdd);
    const PdProcResult b = pdprocBestPd(rdd);
    EXPECT_EQ(a.pd, b.pd);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(PdProcProgram, SingleBucketDegenerate)
{
    RdCounterArray rdd(16, 16); // one bucket
    rdd.recordHit(10);
    rdd.recordAccess();
    rdd.recordAccess();
    EXPECT_EQ(pdprocBestPd(rdd).pd, 16u);
    EXPECT_EQ(pdprocReferenceBestPd(rdd), 16u);
}

/**
 * @file
 * Tests for the multi-tenant cache-service mode (src/service/): scenario
 * scripting, open-loop determinism, invariant cleanliness through tenant
 * churn at maximum audit cadence, lifecycle/realloc event emission, and
 * per-tenant SLO metric plumbing.
 */

#include <gtest/gtest.h>

#include "check/check.h"
#include "runner/results_sink.h"
#include "service/scenario.h"
#include "service/service_sim.h"

using namespace pdp;

namespace
{

/** A seconds-long population: 3 initial tenants, one scripted swap. */
std::vector<TenantSpec>
smallTenants()
{
    std::vector<TenantSpec> tenants(4);
    tenants[0].name = "alpha";
    tenants[0].arrivalRate = 2.0;
    tenants[0].footprintLines = 1 << 10;
    tenants[1].name = "beta";
    tenants[1].arrivalRate = 1.0;
    tenants[1].footprintLines = 1 << 12;
    tenants[1].zipfAlpha = 0.6;
    tenants[1].leaveAt = 20'000;
    tenants[2].name = "gamma";
    tenants[2].arrivalRate = 4.0;
    tenants[2].footprintLines = 1 << 11;
    tenants[3].name = "delta";
    tenants[3].footprintLines = 1 << 10;
    tenants[3].joinAt = 20'000; // swaps into beta's slot
    return tenants;
}

ServiceConfig
smallConfig()
{
    ServiceConfig config;
    config.slots = 4;
    config.accesses = 60'000;
    config.warmup = 10'000;
    config.sloInterval = 4'000;
    return config;
}

} // namespace

TEST(ServiceScenario, LifetimePopulationAndChurnScript)
{
    ServiceScenarioParams params;
    params.tenants = 8;
    params.churn = 3;
    params.accesses = 400'000;
    const auto tenants = buildServiceScenario(params, 42);
    ASSERT_EQ(tenants.size(), 11u); // 8 initial + 3 churn joiners
    unsigned leavers = 0, lateJoiners = 0;
    for (const TenantSpec &t : tenants) {
        leavers += t.leaveAt > 0 ? 1 : 0;
        lateJoiners += t.joinAt > 0 ? 1 : 0;
        if (t.leaveAt > 0) {
            EXPECT_GT(t.leaveAt, t.joinAt);
        }
    }
    EXPECT_EQ(leavers, 3u);
    EXPECT_EQ(lateJoiners, 3u);
    // Identical (params, seed) => identical script.
    const auto again = buildServiceScenario(params, 42);
    for (size_t i = 0; i < tenants.size(); ++i) {
        EXPECT_EQ(tenants[i].name, again[i].name);
        EXPECT_EQ(tenants[i].footprintLines, again[i].footprintLines);
        EXPECT_EQ(tenants[i].joinAt, again[i].joinAt);
        EXPECT_EQ(tenants[i].leaveAt, again[i].leaveAt);
    }
}

TEST(ServiceScenario, RejectsChurnSwallowingThePopulation)
{
    ServiceScenarioParams params;
    params.tenants = 4;
    params.churn = 4;
    EXPECT_THROW(buildServiceScenario(params, 1), CheckFailure);
}

TEST(ServiceSim, DeterministicAcrossRepeatedRuns)
{
    const auto tenants = smallTenants();
    const ServiceConfig config = smallConfig();
    for (const char *policy : {"LRU", "UCP", "PDP-3"}) {
        const ServiceResult a = runService(tenants, policy, config, 7);
        const ServiceResult b = runService(tenants, policy, config, 7);
        // The serialized form covers every deterministic field at once.
        EXPECT_EQ(runner::toJson(a).dump(2), runner::toJson(b).dump(2))
            << policy;
    }
}

TEST(ServiceSim, ChurnIsAuditCleanAtMaxCadence)
{
    const auto tenants = smallTenants();
    ServiceConfig config = smallConfig();
    config.auditEvery = 1;
    config.auditFailFast = true; // throw at the offending access
    for (const char *policy : {"UCP", "PDP-2", "PDP-3"}) {
        const ServiceResult result = runService(tenants, policy, config, 7);
        EXPECT_TRUE(result.tenantAware) << policy;
        EXPECT_GT(result.auditsRun, 0u) << policy;
        EXPECT_EQ(result.auditViolations, 0u) << policy;
    }
}

TEST(ServiceSim, EmitsLifecycleAndReallocEvents)
{
    const auto tenants = smallTenants();
    ServiceConfig config = smallConfig();
    config.telemetry.enabled = true;
    config.telemetry.traceEvents = true;
    const ServiceResult result = runService(tenants, "PDP-3", config, 7);
    ASSERT_NE(result.telemetry, nullptr);
    unsigned joins = 0, leaves = 0, reallocs = 0;
    for (const telemetry::TraceEvent &event : result.telemetry->events) {
        joins += event.type == "tenant_join" ? 1 : 0;
        leaves += event.type == "tenant_leave" ? 1 : 0;
        reallocs += event.type == "partition_realloc" ? 1 : 0;
    }
    // The scripted swap: one mid-run join, one leave, and at least one
    // partition_realloc per churn edge.
    EXPECT_EQ(joins, 1u);
    EXPECT_EQ(leaves, 1u);
    EXPECT_GE(reallocs, 2u);
    EXPECT_EQ(result.joins, 4u);
    EXPECT_EQ(result.leaves, 1u);
    EXPECT_GE(result.reallocs, result.joins + result.leaves);
}

TEST(ServiceSim, PerTenantSloMetricsArePopulated)
{
    auto tenants = smallTenants();
    tenants[0].slo.minHitRate = 0.01;
    tenants[0].slo.maxP99MissCycles = 256.0;
    const ServiceResult result =
        runService(tenants, "PDP-3", smallConfig(), 7);
    ASSERT_EQ(result.tenants.size(), 4u);
    for (const TenantOutcome &t : result.tenants) {
        EXPECT_GT(t.requests, 0u) << t.name;
        EXPECT_GE(t.hitRate, 0.0);
        EXPECT_LE(t.hitRate, 1.0);
        EXPECT_GE(t.meanQuota, 0.0);
        EXPECT_LE(t.meanQuota, 1.0);
        EXPECT_GE(t.occupancyDrift, 0.0);
        EXPECT_LE(t.occupancyDrift, 1.0);
    }
    // The swap pair shares a slot: beta leaves, delta takes its place.
    EXPECT_EQ(result.tenants[1].leftAt, 20'000u);
    EXPECT_EQ(result.tenants[3].joinedAt, 20'000u);
    EXPECT_EQ(result.tenants[1].slot, result.tenants[3].slot);
    // p99 is a log2 bucket upper edge: one less than a power of two
    // (or zero when the tenant never missed).
    for (const TenantOutcome &t : result.tenants) {
        const uint64_t p99 = static_cast<uint64_t>(t.p99MissCycles);
        EXPECT_EQ((p99 + 1) & p99, 0u) << t.name << " p99=" << p99;
    }
}

TEST(ServiceSim, BaselinePoliciesRunUnmanaged)
{
    const ServiceResult result =
        runService(smallTenants(), "LRU", smallConfig(), 7);
    EXPECT_FALSE(result.tenantAware);
    EXPECT_EQ(result.joins, 4u);
    EXPECT_EQ(result.leaves, 1u);
    // Quotas fall back to an equal share of the live tenants.
    for (const TenantOutcome &t : result.tenants)
        EXPECT_NEAR(t.meanQuota, 1.0 / 3.0, 0.05) << t.name;
}

/**
 * @file
 * Cross-module integration tests: end-to-end reproduction of the paper's
 * qualitative claims on short runs.  These are the "does the repo tell
 * the paper's story" checks.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "core/pdp_policy.h"
#include "sim/multi_core_sim.h"
#include "sim/policy_factory.h"
#include "sim/single_core_sim.h"
#include "trace/spec_suite.h"

using namespace pdp;

namespace
{

SimConfig
shortConfig()
{
    SimConfig config;
    config.accesses = 800000;
    config.warmup = 400000;
    return config;
}

} // namespace

TEST(Integration, DynamicPdpTracksTheStaticOptimumOnCactus)
{
    // The paper's flagship: the computed PD lands on the RDD peak.
    const SimConfig config = shortConfig();
    auto gen = SpecSuite::make("436.cactusADM");
    auto policy = makeDynamicPdp(8);
    const PdpPolicy *pdp = policy.get();
    Hierarchy h(config.hierarchy, std::move(policy));
    runSingleCore(*gen, h, config);
    ASSERT_GE(pdp->pdHistory().size(), 2u);
    const uint32_t final_pd = pdp->pd();
    EXPECT_GE(final_pd, 72u);
    EXPECT_LE(final_pd, 128u);
}

TEST(Integration, PdpBeatsDipAndDrripOnPeakedBenchmarks)
{
    const SimConfig config = shortConfig();
    for (const char *bench : {"436.cactusADM", "482.sphinx3"}) {
        const SimResult dip = runSingleCore(bench, "DIP", config);
        const SimResult drrip = runSingleCore(bench, "DRRIP", config);
        const SimResult pdp = runSingleCore(bench, "PDP-8", config);
        EXPECT_LT(pdp.llcMisses, dip.llcMisses) << bench;
        EXPECT_LE(pdp.llcMisses, drrip.llcMisses * 1.01) << bench;
    }
}

TEST(Integration, EelruLosesToDip)
{
    const SimConfig config = shortConfig();
    const SimResult dip = runSingleCore("450.soplex", "DIP", config);
    const SimResult eelru = runSingleCore("450.soplex", "EELRU", config);
    EXPECT_GT(eelru.llcMisses, dip.llcMisses);
}

TEST(Integration, SdpWinsWherePcPredictsDeath)
{
    const SimConfig config = shortConfig();
    for (const char *bench : {"437.leslie3d", "459.GemsFDTD"}) {
        const SimResult sdp = runSingleCore(bench, "SDP", config);
        const SimResult pdp = runSingleCore(bench, "PDP-8", config);
        const SimResult dip = runSingleCore(bench, "DIP", config);
        EXPECT_LT(sdp.llcMisses, dip.llcMisses) << bench;
        EXPECT_LT(sdp.llcMisses, pdp.llcMisses) << bench;
    }
}

TEST(Integration, SdpLosesOnSharedPcBenchmarks)
{
    const SimConfig config = shortConfig();
    for (const char *bench : {"464.h264ref", "483.xalancbmk.3"}) {
        const SimResult sdp = runSingleCore(bench, "SDP", config);
        const SimResult dip = runSingleCore(bench, "DIP", config);
        EXPECT_GT(sdp.llcMisses, dip.llcMisses) << bench;
    }
}

TEST(Integration, BypassMattersOnH264)
{
    // SPDP-B vs SPDP-NB at the same PD: bypass reduces misses.
    const SimConfig config = shortConfig();
    const SimResult nb = runSingleCore("464.h264ref", "SPDP-NB:40", config);
    const SimResult b = runSingleCore("464.h264ref", "SPDP-B:40", config);
    EXPECT_LT(b.llcMisses, nb.llcMisses);
}

TEST(Integration, LibquantumNeedsFullNc)
{
    // PD = d_max: PDP-2/PDP-3 cannot protect far enough (Sec. 6.2).
    // libquantum's reuse lap is ~512K accesses, so this one needs a
    // longer run than the other integration checks.
    SimConfig config;
    config.accesses = 1'600'000;
    config.warmup = 800'000;
    const SimResult pdp8 = runSingleCore("462.libquantum", "PDP-8", config);
    const SimResult pdp2 = runSingleCore("462.libquantum", "PDP-2", config);
    EXPECT_LT(pdp8.llcMisses, pdp2.llcMisses);
}

TEST(Integration, McfPrefersPdOneInsertion)
{
    // Sec. 6.3: inserting with PD=1 beats the computed PD on mcf.
    const SimConfig config = shortConfig();
    const SimResult pdp = runSingleCore("429.mcf", "PDP-8", config);
    const SimResult pd1 = runSingleCore("429.mcf", "PDP-1INS", config);
    EXPECT_LT(pd1.llcMisses, pdp.llcMisses);
}

TEST(Integration, PhasedBenchmarkTriggersPdChanges)
{
    SimConfig config;
    config.accesses = 4'000'000;
    config.warmup = 200'000;
    auto gen = SpecSuite::make("483.xalancbmk.phased");
    PdpParams params;
    params.recomputeInterval = 512 * 1024;
    auto policy = std::make_unique<PdpPolicy>(params);
    const PdpPolicy *pdp = policy.get();
    Hierarchy h(config.hierarchy, std::move(policy));
    runSingleCore(*gen, h, config);
    // Distinct phases must produce distinct recomputed PDs.
    uint32_t min_pd = ~0u, max_pd = 0;
    for (const PdSample &s : pdp->pdHistory()) {
        min_pd = std::min(min_pd, s.pd);
        max_pd = std::max(max_pd, s.pd);
    }
    EXPECT_GT(max_pd, min_pd + 8);
}

TEST(Integration, PartitioningHelpsMixedWorkload)
{
    // A protectable thread next to streamers: PD partitioning should be
    // at least competitive with TA-DRRIP.
    WorkloadSpec spec;
    spec.benchmarks = {"436.cactusADM", "470.lbm", "433.milc",
                       "482.sphinx3"};
    MultiCoreConfig config;
    config.cores = 4;
    config.accessesPerThread = 400000;
    config.warmupPerThread = 150000;
    const MultiCoreResult base = runMultiCore(spec, "TA-DRRIP", config);
    const MultiCoreResult pdp = runMultiCore(spec, "PDP-3", config);
    EXPECT_GT(pdp.weightedIpc, base.weightedIpc * 0.98);
}

TEST(Integration, PrefetchAwareVariantsDoNotRegress)
{
    SimConfig config;
    config.accesses = 400000;
    config.warmup = 150000;
    config.withPrefetcher = true;

    auto run = [&](PdpParams::PrefetchMode mode) {
        PdpParams params;
        params.prefetchMode = mode;
        auto gen = SpecSuite::make("482.sphinx3");
        Hierarchy h(config.hierarchy,
                    std::make_unique<PdpPolicy>(params));
        h.attachPrefetcher(std::make_unique<StreamPrefetcher>());
        return runSingleCore(*gen, h, config);
    };
    const SimResult normal = run(PdpParams::PrefetchMode::Normal);
    const SimResult bypass = run(PdpParams::PrefetchMode::Bypass);
    // The aware variant must not be materially worse.
    EXPECT_GT(bypass.ipc, normal.ipc * 0.97);
}

// Compile-fail probe: a scratch-row image with a user-provided copy
// constructor is not trivially copyable — the cache memcpy-moves rows
// during resizes — and must be rejected by PDP_SCRATCH_LAYOUT.  Built
// by the pdplint_contracts_nontrivial_rejected ctest entry, which
// expects the build to FAIL.
#include <cstdint>

#include "check/contracts.h"

namespace pdp
{

class NontrivialProbePolicy
{
};

struct NontrivialRow
{
    std::uint8_t counter = 0;

    NontrivialRow() = default;
    NontrivialRow(const NontrivialRow &other) : counter(other.counter) {}
};

PDP_SCRATCH_LAYOUT(NontrivialProbePolicy, NontrivialRow);

} // namespace pdp

int
main()
{
    return static_cast<int>(
        pdp::ScratchLayout<pdp::NontrivialProbePolicy>::size);
}

// Compile-fail probe: a scratch-row image one byte larger than the
// lent block must be rejected by the static_assert inside
// PDP_SCRATCH_LAYOUT.  Built by the pdplint_contracts_oversized_rejected
// ctest entry, which expects the build to FAIL.
#include <cstdint>

#include "check/contracts.h"

namespace pdp
{

class OversizedProbePolicy
{
};

struct OversizedRow
{
    std::uint8_t bytes[kPolicyScratchBytes + 1];
};

PDP_SCRATCH_LAYOUT(OversizedProbePolicy, OversizedRow);

} // namespace pdp

int
main()
{
    return static_cast<int>(
        pdp::ScratchLayout<pdp::OversizedProbePolicy>::size);
}

// Positive coverage for the scratch-row contract (check/contracts.h):
// every concrete policy declares a PDP_SCRATCH_LAYOUT whose row image
// fits the cache's lent 16-byte per-set scratch block.  The negative
// side (oversized / non-trivially-copyable images must not compile)
// lives in tests/contracts/ behind the pdplint_contracts_*_rejected
// ctest entries.
#include <type_traits>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "check/contracts.h"
#include "core/pdp_policy.h"
#include "partition/pdp_partition.h"
#include "partition/pipp.h"
#include "partition/ta_drrip.h"
#include "partition/ucp.h"
#include "policies/basic.h"
#include "policies/dip.h"
#include "policies/eelru.h"
#include "policies/rrip.h"
#include "policies/sdp.h"
#include "policies/ship.h"

namespace pdp
{
namespace
{

template <typename Policy>
constexpr bool
layoutHolds()
{
    using Layout = ScratchLayout<Policy>;
    static_assert(Layout::size == sizeof(typename Layout::type),
                  "size member must mirror sizeof(type)");
    static_assert(Layout::size <= kPolicyScratchBytes,
                  "row image must fit the lent scratch block");
    static_assert(std::is_trivially_copyable_v<typename Layout::type>,
                  "row image must be trivially copyable");
    return true;
}

// Every concrete policy in src/policies + src/partition + src/core.
static_assert(layoutHolds<LruPolicy>());
static_assert(layoutHolds<FifoPolicy>());
static_assert(layoutHolds<RandomPolicy>());
static_assert(layoutHolds<InsertionLruPolicy>());
static_assert(layoutHolds<SdpPolicy>());
static_assert(layoutHolds<EelruPolicy>());
static_assert(layoutHolds<RripPolicy>());
static_assert(layoutHolds<ShipPolicy>());
static_assert(layoutHolds<PdpPolicy>());
static_assert(layoutHolds<UcpPolicy>());
static_assert(layoutHolds<TaDrripPolicy>());
static_assert(layoutHolds<PippPolicy>());
static_assert(layoutHolds<PdpPartitionPolicy>());

// The recency family stores per-way ranks in the lent row; everyone
// else keeps per-set state policy-owned and declares NoScratchState.
static_assert(std::is_same_v<ScratchLayout<LruPolicy>::type, LruRankRow>);
static_assert(
    std::is_same_v<ScratchLayout<InsertionLruPolicy>::type, LruRankRow>);
static_assert(std::is_same_v<ScratchLayout<SdpPolicy>::type, LruRankRow>);
static_assert(std::is_same_v<ScratchLayout<UcpPolicy>::type, LruRankRow>);
static_assert(
    std::is_same_v<ScratchLayout<FifoPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<RandomPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<EelruPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<RripPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<ShipPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<PdpPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<TaDrripPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<PippPolicy>::type, NoScratchState>);
static_assert(
    std::is_same_v<ScratchLayout<PdpPartitionPolicy>::type, NoScratchState>);

// The rank row uses the whole block; the empty image stays empty.
static_assert(sizeof(LruRankRow) == kPolicyScratchBytes);
static_assert(std::is_empty_v<NoScratchState>);

TEST(ScratchContracts, RowImagesFitTheLentRow)
{
    // The static_asserts above are the real gate; restate the bound at
    // runtime so a failure would name the policy in ctest output.
    EXPECT_LE(ScratchLayout<LruPolicy>::size, kPolicyScratchBytes);
    EXPECT_LE(ScratchLayout<SdpPolicy>::size, kPolicyScratchBytes);
    EXPECT_LE(ScratchLayout<UcpPolicy>::size, kPolicyScratchBytes);
    EXPECT_EQ(ScratchLayout<FifoPolicy>::size, sizeof(NoScratchState));
}

TEST(ScratchContracts, CacheLendsAFullRowPerSet)
{
    // Scratch rows live inside the 64-byte SetState lines, one full
    // kPolicyScratchBytes block per set.
    EXPECT_GE(Cache::policyScratchStride(), kPolicyScratchBytes);
    EXPECT_EQ(Cache::policyScratchStride() % 64u, 0u);
}

} // namespace
} // namespace pdp

/**
 * @file
 * Tests for the observability plane (DESIGN.md "Observability plane"):
 * deterministic head-sampled request spans, TRACE byte-identity across
 * worker counts under service churn, the EventTrace overflow path, SLO
 * burn-rate transitions, hardware perf-counter degradation, and the
 * fault flight recorder (both capture paths).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "check/flight_recorder.h"
#include "hw/perf_counters.h"
#include "runner/results_sink.h"
#include "runner/suites.h"
#include "runner/thread_pool.h"
#include "service/service_sim.h"
#include "service/slo_monitor.h"
#include "telemetry/event_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/span_tracer.h"

using namespace pdp;
using runner::ExecutorOptions;
using runner::Job;
using runner::JobContext;
using runner::JobOutcome;
using runner::JobRecord;
using runner::JobStatus;
using runner::ResultsSink;
using runner::SuiteOptions;
using runner::ThreadPoolExecutor;

namespace
{

/** The span field, or -1 when absent (all real fields are >= 0). */
double
spanField(const telemetry::TraceEvent &event, const std::string &name)
{
    for (const auto &field : event.fields)
        if (field.first == name)
            return field.second;
    return -1.0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A fresh TempDir subdirectory. */
std::string
makeDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::create_directories(dir);
    return dir;
}

/** The small scripted population test_service.cpp also uses: 3 initial
 *  tenants plus one mid-run swap. */
std::vector<TenantSpec>
smallTenants()
{
    std::vector<TenantSpec> tenants(4);
    tenants[0].name = "alpha";
    tenants[0].arrivalRate = 2.0;
    tenants[0].footprintLines = 1 << 10;
    tenants[1].name = "beta";
    tenants[1].arrivalRate = 1.0;
    tenants[1].footprintLines = 1 << 12;
    tenants[1].leaveAt = 20'000;
    tenants[2].name = "gamma";
    tenants[2].arrivalRate = 4.0;
    tenants[2].footprintLines = 1 << 11;
    tenants[3].name = "delta";
    tenants[3].footprintLines = 1 << 10;
    tenants[3].joinAt = 20'000;
    return tenants;
}

ServiceConfig
smallConfig()
{
    ServiceConfig config;
    config.slots = 4;
    config.accesses = 60'000;
    config.warmup = 10'000;
    config.sloInterval = 4'000;
    return config;
}

} // namespace

// ---------------------------------------------------------------------
// SpanTracer: deterministic head sampling + lifecycle emission.

TEST(SpanTracer, SamplingIsPureSeededAndRateBounded)
{
    telemetry::EventTrace trace(64);
    const telemetry::SpanTracer never(&trace, 42, 0.0);
    const telemetry::SpanTracer always(&trace, 42, 1.0);
    const telemetry::SpanTracer some(&trace, 42, 0.25);
    const telemetry::SpanTracer same(&trace, 42, 0.25);
    const telemetry::SpanTracer other(&trace, 43, 0.25);

    uint64_t sampled = 0, disagree = 0;
    for (unsigned tenant = 0; tenant < 8; ++tenant) {
        for (uint64_t request = 0; request < 2'000; ++request) {
            EXPECT_FALSE(never.shouldSample(tenant, request));
            EXPECT_TRUE(always.shouldSample(tenant, request));
            const bool a = some.shouldSample(tenant, request);
            // Pure: repeated queries and an identically-seeded tracer
            // agree on every decision.
            EXPECT_EQ(a, some.shouldSample(tenant, request));
            EXPECT_EQ(a, same.shouldSample(tenant, request));
            sampled += a ? 1 : 0;
            disagree += a != other.shouldSample(tenant, request) ? 1 : 0;
        }
    }
    // The hash spreads: the sampled fraction tracks the rate, and a
    // different seed selects a different request subset.
    EXPECT_NEAR(static_cast<double>(sampled) / 16'000.0, 0.25, 0.05);
    EXPECT_GT(disagree, 0u);
}

TEST(SpanTracer, EmitsTheLifecyclePathTheRequestTook)
{
    const struct
    {
        HitLevel level;
        bool bypassed;
        std::vector<std::string> stages;
    } cases[] = {
        {HitLevel::L2, false, {"l2_hit"}},
        {HitLevel::Llc, false, {"l2_miss", "llc_probe", "llc_hit"}},
        {HitLevel::Memory, false,
         {"l2_miss", "llc_probe", "llc_victim", "mem_fill"}},
        {HitLevel::Memory, true,
         {"l2_miss", "llc_probe", "llc_bypass", "mem_fill"}},
    };
    for (const auto &c : cases) {
        telemetry::EventTrace trace(64);
        telemetry::SpanTracer tracer(&trace, 7, 1.0);
        ASSERT_TRUE(tracer.beginRequest(3, 1, 11, 100, 1'000));
        EXPECT_EQ(tracer.openSpans().size(), 1u);
        tracer.endRequest(c.level, c.bypassed, 105, 1'500);
        EXPECT_TRUE(tracer.openSpans().empty());

        const auto events = trace.chronological();
        ASSERT_EQ(events.size(), 1 + c.stages.size());
        // Root first, parent 0; every stage child parented to the root,
        // all sharing one trace id, all IDs in 48 bits.
        EXPECT_EQ(events[0].type, "span:arrival");
        const double traceId = spanField(events[0], "trace_id");
        const double rootId = spanField(events[0], "span_id");
        EXPECT_EQ(spanField(events[0], "parent"), 0.0);
        EXPECT_GT(traceId, 0.0);
        EXPECT_LT(traceId, static_cast<double>(uint64_t{1} << 48));
        for (size_t k = 0; k < c.stages.size(); ++k) {
            const auto &event = events[k + 1];
            EXPECT_EQ(event.type, "span:" + c.stages[k]);
            EXPECT_EQ(spanField(event, "trace_id"), traceId);
            EXPECT_EQ(spanField(event, "parent"), rootId);
            EXPECT_EQ(spanField(event, "tenant"), 3.0);
            EXPECT_EQ(spanField(event, "slot"), 1.0);
            EXPECT_EQ(spanField(event, "request"), 11.0);
            EXPECT_EQ(spanField(event, "cycles_begin"), 1'000.0);
            EXPECT_EQ(spanField(event, "cycles_end"), 1'500.0);
        }
    }
}

TEST(SpanTracer, UnsampledRequestsOpenNothing)
{
    telemetry::EventTrace trace(64);
    telemetry::SpanTracer tracer(&trace, 7, 0.0);
    EXPECT_FALSE(tracer.beginRequest(0, 0, 0, 0, 0));
    tracer.endRequest(HitLevel::L2, false, 1, 1); // no open span: no-op
    EXPECT_EQ(tracer.sampled(), 0u);
    EXPECT_EQ(trace.size(), 0u);
}

// ---------------------------------------------------------------------
// EventTrace overflow accounting.

TEST(EventTrace, DropOldestCountsAndSurfacesProcessWide)
{
    auto &counter = telemetry::MetricsRegistry::global().counter(
        "telemetry.trace_dropped_events");
    const uint64_t before = counter.value();

    telemetry::EventTrace ring(4);
    for (uint64_t i = 0; i < 10; ++i) {
        telemetry::TraceEvent event;
        event.type = "epoch";
        event.accessCount = i;
        ring.record(std::move(event));
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.dropped(), 6u);

    const auto events = ring.chronological();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().accessCount, 6u); // oldest survivor
    EXPECT_EQ(events.back().accessCount, 9u);
    // Losses are also surfaced on the process-wide registry counter
    // (telemetry_report.py warns on it).
    EXPECT_EQ(counter.value() - before, 6u);
}

// ---------------------------------------------------------------------
// Service-mode spans: determinism, and determinism through overflow.

TEST(ServiceObservability, SpanSamplingIsDeterministicAcrossRuns)
{
    const auto tenants = smallTenants();
    ServiceConfig config = smallConfig();
    config.telemetry.enabled = true;
    config.telemetry.traceEvents = true;
    config.telemetry.spanSampleRate = 0.2;

    const ServiceResult a = runService(tenants, "PDP-3", config, 7);
    const ServiceResult b = runService(tenants, "PDP-3", config, 7);
    EXPECT_GT(a.spansSampled, 0u);
    EXPECT_EQ(a.spansSampled, b.spansSampled);
    // The deterministic serialization covers event streams and all.
    EXPECT_EQ(runner::toJson(a).dump(2), runner::toJson(b).dump(2));

    unsigned roots = 0;
    ASSERT_NE(a.telemetry, nullptr);
    for (const telemetry::TraceEvent &event : a.telemetry->events)
        roots += event.type == "span:arrival" ? 1 : 0;
    EXPECT_GT(roots, 0u);

    // Rate 0 really disables the tracer.
    config.telemetry.spanSampleRate = 0.0;
    EXPECT_EQ(runService(tenants, "PDP-3", config, 7).spansSampled, 0u);
}

TEST(ServiceObservability, OverflowPathStaysDeterministic)
{
    const auto tenants = smallTenants();
    ServiceConfig config = smallConfig();
    config.telemetry.enabled = true;
    config.telemetry.traceEvents = true;
    config.telemetry.spanSampleRate = 1.0; // every request: ring floods
    config.telemetry.traceCapacity = 256;

    auto &counter = telemetry::MetricsRegistry::global().counter(
        "telemetry.trace_dropped_events");
    const uint64_t before = counter.value();
    const ServiceResult a = runService(tenants, "PDP-3", config, 7);
    ASSERT_NE(a.telemetry, nullptr);
    EXPECT_GT(a.telemetry->eventsDropped, 0u);
    EXPECT_LE(a.telemetry->events.size(), 256u);
    EXPECT_GT(counter.value(), before);

    // Drop-oldest truncation is itself deterministic.
    const ServiceResult b = runService(tenants, "PDP-3", config, 7);
    EXPECT_EQ(runner::toJson(a).dump(2), runner::toJson(b).dump(2));
}

// ---------------------------------------------------------------------
// The acceptance criterion: TRACE (and BENCH) byte-identity across
// worker counts under service churn, tracing enabled.

TEST(ServiceObservability, TraceFilesByteIdenticalAcrossWorkerCounts)
{
    const runner::Suite *suite = runner::findSuite("service");
    ASSERT_NE(suite, nullptr);

    SuiteOptions options;
    options.scale = 0.1;
    options.serviceTenants = 32;
    options.serviceChurn = 8;
    options.trace = true;
    options.obsSampleRate = 0.05;
    options.deterministicJson = true;
    std::vector<Job> jobs = suite->buildJobs(options);
    // Two policies exercise cross-job interleaving without paying for
    // the full grid here; CI's obs-smoke runs every policy.
    jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                              [](const Job &job) {
                                  return job.key.find("/LRU") ==
                                             std::string::npos &&
                                         job.key.find("/PDP-2") ==
                                             std::string::npos;
                              }),
               jobs.end());
    ASSERT_EQ(jobs.size(), 2u);

    const auto runOnce = [&jobs](unsigned workers,
                                 const std::string &dir) {
        ResultsSink sink("service");
        sink.setScale(0.1);
        sink.setDeterministicFile(true);
        ExecutorOptions eopts;
        eopts.workers = workers;
        eopts.onComplete = [&sink](const JobRecord &r) { sink.add(r); };
        ThreadPoolExecutor(eopts).run(jobs);
        std::string tracePath, benchPath;
        EXPECT_TRUE(sink.writeTraceFile(dir, &tracePath));
        EXPECT_TRUE(sink.writeFile(dir, &benchPath));
        return readFile(tracePath) + "\x1e" + readFile(benchPath);
    };

    const std::string serial = runOnce(1, makeDir("obs_w1"));
    const std::string parallel = runOnce(4, makeDir("obs_w4"));
    EXPECT_NE(serial.find("span:arrival"), std::string::npos);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------
// SLO burn-rate monitoring.

TEST(SloMonitor, BurnAndRecoveryTransitions)
{
    telemetry::EventTrace trace(256);
    SloMonitorConfig config;
    config.windowIntervals = 4;
    config.budget = 0.25; // one tolerated violation per full window
    SloMonitor monitor(config, 2, &trace);

    SloBounds bounds;
    bounds.minHitRate = 0.5;
    monitor.attach(0, 3, bounds);
    EXPECT_EQ(monitor.burningCount(), 0u);

    uint64_t access = 0;
    monitor.observe(0, access += 1'000, 100, 0.9, 0.0); // healthy
    EXPECT_FALSE(monitor.burning(0));
    monitor.observe(0, access += 1'000, 100, 0.1, 0.0); // violates
    EXPECT_TRUE(monitor.burning(0));
    EXPECT_EQ(monitor.burningCount(), 1u);
    EXPECT_GE(monitor.burnRate(0), 1.0);

    // An idle interval (no accesses) never scores as violating, even
    // with a violating-looking hit rate of zero.
    monitor.observe(0, access += 1'000, 0, 0.0, 0.0);

    // Healthy intervals age the violation out of the window.
    for (int i = 0; i < 8 && monitor.burning(0); ++i)
        monitor.observe(0, access += 1'000, 100, 0.9, 0.0);
    EXPECT_FALSE(monitor.burning(0));
    EXPECT_EQ(monitor.burningCount(), 0u);

    const SloBurnStats &stats = monitor.stats(0);
    EXPECT_EQ(stats.burnEvents, 1u);
    EXPECT_EQ(stats.recoveredEvents, 1u);
    EXPECT_EQ(stats.violations, 1u);
    EXPECT_GE(stats.maxBurnRate, 1.0);
    EXPECT_GT(stats.intervals, 2u);

    unsigned burn = 0, recovered = 0;
    for (const telemetry::TraceEvent &event : trace.chronological()) {
        if (event.type == "slo_burn") {
            ++burn;
            EXPECT_EQ(spanField(event, "tenant"), 3.0);
            EXPECT_GE(spanField(event, "burn_rate"), 1.0);
        }
        recovered += event.type == "slo_recovered" ? 1 : 0;
    }
    EXPECT_EQ(burn, 1u);
    EXPECT_EQ(recovered, 1u);

    monitor.detach(0);
    EXPECT_EQ(monitor.burningCount(), 0u);
}

TEST(SloMonitor, LatencyBoundBurnsAndDetachStopsCounting)
{
    SloMonitorConfig config;
    config.windowIntervals = 4;
    config.budget = 0.25;
    SloMonitor monitor(config, 2, nullptr); // metrics-only: no trace

    SloBounds bounds;
    bounds.maxP99MissCycles = 100.0;
    monitor.attach(1, 9, bounds);
    monitor.observe(1, 1'000, 50, 1.0, 400.0); // p99 blows the bound
    EXPECT_TRUE(monitor.burning(1));
    EXPECT_EQ(monitor.burningCount(), 1u);
    EXPECT_EQ(monitor.stats(1).violations, 1u);

    // A burning tenant that leaves stops counting toward the gauge but
    // gets no synthetic recovery event.
    monitor.detach(1);
    EXPECT_EQ(monitor.burningCount(), 0u);
    EXPECT_EQ(monitor.stats(1).recoveredEvents, 0u);
}

// ---------------------------------------------------------------------
// Hardware perf counters: clean degradation, absent-not-zero-filled.

TEST(PerfCounters, NullBackendReadsInvalid)
{
    hw::PerfCounterGroup group;
    EXPECT_EQ(group.active(), hw::PerfCounterGroup::available());
    if (!group.active()) {
        // Locked-down host: the null backend must say "no data", never
        // hand out zeros that look like measurements.
        EXPECT_FALSE(group.read().valid);
    } else {
        group.start();
        volatile uint64_t sink = 0;
        for (uint64_t i = 0; i < 100'000; ++i)
            sink = sink + i;
        const hw::PerfReading reading = group.read();
        EXPECT_TRUE(reading.valid);
        EXPECT_GT(reading.instructions, 0u);
    }

    // since() propagates invalidity from either side.
    hw::PerfReading valid;
    valid.valid = true;
    valid.cycles = 100;
    hw::PerfReading invalid;
    EXPECT_FALSE(valid.since(invalid).valid);
    EXPECT_FALSE(invalid.since(valid).valid);
    hw::PerfReading later = valid;
    later.cycles = 175;
    const hw::PerfReading delta = later.since(valid);
    EXPECT_TRUE(delta.valid);
    EXPECT_EQ(delta.cycles, 75u);
}

TEST(PerfCounters, HardwareSectionAbsentWhenInvalid)
{
    JobRecord record;
    record.key = "obs/hw/probe";
    record.seed = 1;
    record.status = JobStatus::Ok;

    // Invalid reading: no hardware section in any form.
    EXPECT_EQ(runner::toJson(record, true).dump().find("\"hardware\""),
              std::string::npos);

    record.hw.valid = true;
    record.hw.cycles = 1'000;
    record.hw.instructions = 2'000;
    record.hw.cacheMisses = 30;
    record.hw.branchMisses = 40;
    const std::string hot = runner::toJson(record, true).dump(2);
    EXPECT_NE(hot.find("\"hardware\""), std::string::npos);
    EXPECT_NE(hot.find("\"instructions\": 2000"), std::string::npos);
    // Host-measured data is volatile: the deterministic form omits it
    // even when valid.
    EXPECT_EQ(runner::toJson(record, false).dump().find("\"hardware\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// The fault flight recorder.

TEST(FlightRecorder, DisabledAndPerJobDedupGating)
{
    const std::string dir = makeDir("flight_gate");
    check::ScopedFlightRecorder armed(dir);
    auto &recorder = check::FlightRecorder::global();

    recorder.setEnabled(false);
    EXPECT_FALSE(
        recorder.dump("obs-gate", "job_failed", "x", nullptr, nullptr));
    recorder.setEnabled(true);
    EXPECT_TRUE(
        recorder.dump("obs-gate", "job_failed", "x", nullptr, nullptr));
    // First dump wins: richer scope dumps are never clobbered by the
    // executor fallback.
    EXPECT_FALSE(
        recorder.dump("obs-gate", "job_failed", "again", nullptr, nullptr));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + check::flightFileName("obs-gate")));
}

TEST(FlightRecorder, InjectedCheckFailureDumpsRingAndOpenSpans)
{
    const std::string dir = makeDir("flight_check");
    check::ScopedFlightRecorder armed(dir);
    check::FlightRecorder::setJobKey("obs-flight-check");

    ServiceConfig config = smallConfig();
    config.faultAt = 30'000; // inside the measured window
    config.telemetry.enabled = true;
    config.telemetry.traceEvents = true;
    config.telemetry.spanSampleRate = 1.0; // the faulted request is traced
    EXPECT_THROW(runService(smallTenants(), "PDP-3", config, 7),
                 CheckFailure);
    check::FlightRecorder::setJobKey("");

    const std::string path =
        dir + "/" + check::flightFileName("obs-flight-check");
    std::string error;
    const auto doc = runner::Json::parse(readFile(path), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("schema")->asString(), "pdp-flight/v1");
    EXPECT_EQ(doc->find("job")->asString(), "obs-flight-check");
    EXPECT_EQ(doc->find("reason")->asString(), "check_failure");
    // The scope dumped while sampler and tracer were still alive: the
    // event ring, the faulted request's open span, and the registry.
    ASSERT_NE(doc->find("events"), nullptr);
    EXPECT_GT(doc->find("events")->size(), 0u);
    ASSERT_NE(doc->find("open_spans"), nullptr);
    EXPECT_GE(doc->find("open_spans")->size(), 1u);
    ASSERT_NE(doc->find("metrics"), nullptr);
}

TEST(FlightRecorder, ExecutorFallbackDumpsFailedJobs)
{
    const std::string dir = makeDir("flight_fallback");
    check::ScopedFlightRecorder armed(dir);

    Job job;
    job.key = "obs/fallback/boom";
    job.seed = 1;
    job.run = [](const JobContext &) -> JobOutcome {
        throw std::runtime_error("injected failure");
    };
    ExecutorOptions eopts;
    eopts.workers = 1;
    const auto records = ThreadPoolExecutor(eopts).run({job});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].status, JobStatus::Failed);

    const std::string path =
        dir + "/" + check::flightFileName(job.key);
    std::string error;
    const auto doc = runner::Json::parse(readFile(path), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("schema")->asString(), "pdp-flight/v1");
    EXPECT_EQ(doc->find("reason")->asString(), "job_failed");
    EXPECT_NE(doc->find("detail")->asString().find("injected failure"),
              std::string::npos);
    ASSERT_NE(doc->find("metrics"), nullptr);
}

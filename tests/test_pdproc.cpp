/**
 * @file
 * Tests for the PD-compute special-purpose processor (Fig. 8): ISA
 * semantics, assembler label patching, cycle accounting, and bit-exact
 * agreement between the argmax-E microprogram and its C++ fixed-point
 * reference, plus proximity to the floating-point model.
 */

#include <gtest/gtest.h>

#include "core/hit_rate_model.h"
#include "hw/pdproc.h"
#include "util/rng.h"

using namespace pdp;

namespace
{

RdCounterArray
randomRdd(uint32_t step, uint64_t seed, int hits = 3000, int accesses = 5000)
{
    RdCounterArray rdd(256, step);
    Rng rng(seed);
    const uint32_t peak1 = 20 + static_cast<uint32_t>(rng.below(60));
    const uint32_t peak2 = 100 + static_cast<uint32_t>(rng.below(140));
    for (int i = 0; i < hits; ++i) {
        const double u = rng.uniform();
        uint32_t rd;
        if (u < 0.45)
            rd = peak1 + static_cast<uint32_t>(rng.below(7));
        else if (u < 0.75)
            rd = peak2 + static_cast<uint32_t>(rng.below(11));
        else
            rd = 1 + static_cast<uint32_t>(rng.below(255));
        rdd.recordHit(std::min(rd, 256u));
    }
    for (int i = 0; i < accesses; ++i)
        rdd.recordAccess();
    return rdd;
}

} // namespace

TEST(PdProcessor, BasicAluProgram)
{
    ProgramBuilder b;
    b.movi(8, 40);
    b.movi(9, 2);
    b.add(10, 8, 9);   // 42
    b.mult8(11, 10, 9); // 84
    b.div32(12, 11, 9); // 42
    b.halt();
    RdCounterArray rdd(16, 1);
    PdProcessor proc(rdd);
    const PdProcResult result = proc.run(b.finish());
    EXPECT_EQ(result.pd, 42u);
    EXPECT_EQ(result.instructions, 6u);
}

TEST(PdProcessor, EightBitRegistersMask)
{
    ProgramBuilder b;
    b.movi(0, 300); // r0 is 8-bit: 300 & 0xff = 44
    b.mov(12, 0);
    b.halt();
    RdCounterArray rdd(16, 1);
    PdProcessor proc(rdd);
    EXPECT_EQ(proc.run(b.finish()).pd, 44u);
}

TEST(PdProcessor, BranchAndLabelPatching)
{
    // Count down from 5: tests backward branches and flush cycles.
    ProgramBuilder b;
    const int loop = b.label();
    b.movi(8, 5);
    b.movi(9, 0);
    b.movi(12, 0);
    b.bind(loop);
    b.addi(12, 12, 1);
    b.addi(8, 8, -1);
    b.bne(8, 9, loop);
    b.halt();
    RdCounterArray rdd(16, 1);
    PdProcessor proc(rdd);
    const PdProcResult result = proc.run(b.finish());
    EXPECT_EQ(result.pd, 5u);
    // 4 taken branches x 3 flush cycles on top of 1 cycle each.
    EXPECT_EQ(result.cycles, 3u + 3 * 5 + 4 * 3 + 1);
}

TEST(PdProcessor, LdcReadsCountersAndTotal)
{
    RdCounterArray rdd(16, 1);
    rdd.recordHit(3);
    rdd.recordHit(3);
    rdd.recordAccess();
    rdd.recordAccess();
    rdd.recordAccess();
    ProgramBuilder b;
    b.movi(0, 2);  // bucket index of RD 3 (0-based: (3-1)/1 = 2)
    b.ldc(8, 0);
    b.movi(9, 16); // index K = N_t
    b.ldc(10, 9);
    b.add(12, 8, 10);
    b.halt();
    PdProcessor proc(rdd);
    EXPECT_EQ(proc.run(b.finish()).pd, 2u + 3u);
}

TEST(PdProcessor, DivByZeroYieldsZero)
{
    ProgramBuilder b;
    b.movi(8, 100);
    b.movi(9, 0);
    b.div32(12, 8, 9);
    b.halt();
    RdCounterArray rdd(16, 1);
    PdProcessor proc(rdd);
    EXPECT_EQ(proc.run(b.finish()).pd, 0u);
}

TEST(PdProcessor, NonHaltingProgramThrows)
{
    ProgramBuilder b;
    const int loop = b.label();
    b.bind(loop);
    b.movi(8, 1);
    b.bge(8, 8, loop);
    RdCounterArray rdd(16, 1);
    PdProcessor proc(rdd);
    EXPECT_THROW(proc.run(b.finish(), 1000), std::runtime_error);
}

TEST(PdProc, MicroprogramMatchesReferenceExactly)
{
    for (uint32_t step : {2u, 4u, 8u, 16u}) {
        for (uint64_t seed = 1; seed <= 25; ++seed) {
            const RdCounterArray rdd = randomRdd(step, seed * 31 + step);
            const PdProcResult hw = pdprocBestPd(rdd);
            const uint32_t ref = pdprocReferenceBestPd(rdd);
            EXPECT_EQ(hw.pd, ref)
                << "step=" << step << " seed=" << seed;
        }
    }
}

TEST(PdProc, MicroprogramMatchesReferenceAtStepOne)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const RdCounterArray rdd = randomRdd(1, seed * 7);
        EXPECT_EQ(pdprocBestPd(rdd).pd, pdprocReferenceBestPd(rdd))
            << "seed=" << seed;
    }
}

TEST(PdProc, AgreesWithFloatingPointModel)
{
    // The fixed-point hardware and the double-precision model should
    // land on the same RDD region (within a few counter steps).
    int close = 0, total = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        const RdCounterArray rdd = randomRdd(4, seed * 131);
        const HitRateModel model(16);
        const uint32_t hw = pdprocBestPd(rdd).pd;
        const uint32_t fp = model.bestPd(rdd);
        ++total;
        if (hw >= fp ? hw - fp <= 16 : fp - hw <= 16)
            ++close;
    }
    EXPECT_GE(close, total * 8 / 10);
}

TEST(PdProc, CycleBudgetFitsTheInterval)
{
    const RdCounterArray rdd = randomRdd(4, 5);
    const PdProcResult hw = pdprocBestPd(rdd);
    // The paper: PD recomputation every 512K LLC accesses; the search
    // must be negligible against that.
    EXPECT_LT(hw.cycles, 20000u);
    EXPECT_GT(hw.cycles, 1000u); // sanity: it does real work
}

TEST(PdProc, ZeroRddReturnsZero)
{
    RdCounterArray rdd(256, 4);
    EXPECT_EQ(pdprocBestPd(rdd).pd, 0u);
    EXPECT_EQ(pdprocReferenceBestPd(rdd), 0u);
}

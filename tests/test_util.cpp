/**
 * @file
 * Unit tests for the utility layer: RNG determinism and distribution
 * sanity, saturating counters, bit helpers, statistics accumulators and
 * the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/bitutil.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/sat_counter.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pdp;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(42);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(42);
    EXPECT_EQ(rng.next(), first);
}

TEST(SatCounter, SaturatesAtMax)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesAtZero)
{
    SatCounter c(3, 2);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, MsbThreshold)
{
    SatCounter c(10, 0);
    EXPECT_FALSE(c.msbSet());
    c.set(511); // max/2
    EXPECT_FALSE(c.msbSet());
    c.set(512);
    EXPECT_TRUE(c.msbSet());
}

TEST(SatCounter, IncrementByAmountClamps)
{
    SatCounter c(4, 10);
    c.increment(100);
    EXPECT_EQ(c.value(), 15u);
    c.decrement(100);
    EXPECT_EQ(c.value(), 0u);
}

TEST(BitUtil, Log2Helpers)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(2048), 11u);
    EXPECT_EQ(ceilLog2(2048), 11u);
    EXPECT_EQ(ceilLog2(2049), 12u);
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(4095));
    EXPECT_EQ(ceilDiv(7, 3), 3u);
    EXPECT_EQ(ceilDiv(6, 3), 2u);
}

TEST(BitUtil, FoldXorStaysInWidth)
{
    for (uint64_t v : {0ull, 1ull, 0xdeadbeefcafebabeull, ~0ull})
        EXPECT_LT(foldXor(v, 16), 1u << 16);
}

TEST(Stats, AccumulatorBasics)
{
    Accumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    acc.add(2.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(acc.maximum(), 3.0);
}

TEST(Stats, HistogramOverflow)
{
    Histogram h(4);
    h.add(0);
    h.add(3);
    h.add(4); // overflow
    h.add(100);
    EXPECT_EQ(h.at(0), 1u);
    EXPECT_EQ(h.at(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, Log2HistogramBucketsAndEdges)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(50), 6u);   // [32, 64)
    EXPECT_EQ(Log2Histogram::bucketOf(168), 8u);  // [128, 256)
    EXPECT_EQ(Log2Histogram::upperEdge(0), 0u);
    EXPECT_EQ(Log2Histogram::upperEdge(6), 63u);
    EXPECT_EQ(Log2Histogram::upperEdge(8), 255u);
}

TEST(Stats, Log2HistogramQuantileIsResolutionHonest)
{
    Log2Histogram h;
    EXPECT_EQ(h.quantile(0.99), 0u); // empty => 0
    // The timing model's two charged miss costs: 99 overlapped (50
    // cycles, bucket edge 63) and 1 exposed (168 cycles, edge 255).
    for (int i = 0; i < 99; ++i)
        h.add(50);
    h.add(168);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.quantile(0.50), 63u);
    EXPECT_EQ(h.quantile(0.99), 63u);  // rank 99 still in the 50s
    EXPECT_EQ(h.quantile(0.995), 255u);
    EXPECT_EQ(h.quantile(1.0), 255u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, PercentFormatting)
{
    EXPECT_EQ(Table::pct(0.042), "+4.2%");
    EXPECT_EQ(Table::pct(-0.01), "-1.0%");
    EXPECT_EQ(Table::upct(0.5), "50.0%");
}

// ---------------------------------------------------------------------------
// Strict whole-string numeric parsing (util/parse.h).

TEST(Parse, UnsignedAcceptsOnlyWholeDecimalStrings)
{
    EXPECT_EQ(parseUnsigned("0"), 0ul);
    EXPECT_EQ(parseUnsigned("42"), 42ul);
    EXPECT_EQ(parseUnsigned("4096"), 4096ul);

    // The null-endptr strtoul idiom accepted all of these silently.
    EXPECT_FALSE(parseUnsigned("abc").has_value());
    EXPECT_FALSE(parseUnsigned("5x").has_value());
    EXPECT_FALSE(parseUnsigned("").has_value());
    EXPECT_FALSE(parseUnsigned(nullptr).has_value());
    EXPECT_FALSE(parseUnsigned("-1").has_value());
    EXPECT_FALSE(parseUnsigned("+1").has_value());
    EXPECT_FALSE(parseUnsigned(" 1").has_value());
    EXPECT_FALSE(parseUnsigned("1 ").has_value());
    EXPECT_FALSE(parseUnsigned("99999999999999999999999").has_value());
}

TEST(Parse, DoubleAcceptsOnlyWholeFiniteStrings)
{
    EXPECT_EQ(parseDouble("0.5"), 0.5);
    EXPECT_EQ(parseDouble("10"), 10.0);
    EXPECT_EQ(parseDouble("1e3"), 1000.0);
    EXPECT_EQ(parseDouble("-2.5"), -2.5);

    EXPECT_FALSE(parseDouble("5x").has_value());
    EXPECT_FALSE(parseDouble("abc").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
    EXPECT_FALSE(parseDouble(nullptr).has_value());
    EXPECT_FALSE(parseDouble("1.0.0").has_value());
    EXPECT_FALSE(parseDouble("nan").has_value());
    EXPECT_FALSE(parseDouble("inf").has_value());
    EXPECT_FALSE(parseDouble("1e999").has_value());
}

/**
 * @file
 * Tests for the experiment runner (src/runner/): executor determinism
 * across worker counts, per-job fault isolation, soft timeouts, the
 * JSON value model (round-trip + schema of ResultsSink documents), seed
 * derivation, and the suite registry.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runner/job.h"
#include "runner/json.h"
#include "runner/results_sink.h"
#include "runner/suites.h"
#include "runner/thread_pool.h"

using namespace pdp;
using namespace pdp::runner;

namespace
{

/** A small but real simulation grid: 2 benchmarks x 2 policies. */
std::vector<Job>
smallGrid()
{
    SimConfig config;
    config.accesses = 30'000;
    config.warmup = 8'000;
    std::vector<Job> jobs;
    for (const char *bench : {"450.soplex", "429.mcf"})
        for (const char *policy : {"LRU", "PDP-3"})
            jobs.push_back(singleCoreJob(
                std::string("grid/") + bench + "/" + policy, bench, policy,
                config));
    return jobs;
}

std::string
deterministicDump(const std::vector<JobRecord> &records)
{
    ResultsSink sink("determinism");
    for (const JobRecord &record : records)
        sink.add(record);
    return sink.toJson(/*includeVolatile=*/false).dump(2);
}

} // namespace

TEST(SeedFor, StableDistinctNonZero)
{
    EXPECT_EQ(seedFor("450.soplex"), seedFor("450.soplex"));
    EXPECT_NE(seedFor("450.soplex"), seedFor("429.mcf"));
    EXPECT_NE(seedFor(""), 0u);
    EXPECT_NE(seedFor("x"), 0u);
}

TEST(ThreadPoolExecutor, RecordsComeBackInInputOrder)
{
    std::vector<Job> jobs;
    for (int i = 0; i < 16; ++i) {
        Job job;
        job.key = "job" + std::to_string(i);
        job.seed = seedFor(job.key);
        job.run = [i](const JobContext &) {
            JobOutcome outcome;
            outcome.metrics["index"] = i;
            return outcome;
        };
        jobs.push_back(std::move(job));
    }
    ExecutorOptions options;
    options.workers = 4;
    const auto records = ThreadPoolExecutor(options).run(jobs);
    ASSERT_EQ(records.size(), jobs.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].key, jobs[i].key);
        EXPECT_EQ(records[i].status, JobStatus::Ok);
        EXPECT_EQ(records[i].outcome.metrics.at("index"),
                  static_cast<double>(i));
    }
}

TEST(ThreadPoolExecutor, ParallelRunIsByteIdenticalToSerial)
{
    ExecutorOptions serial;
    serial.workers = 1;
    const std::string one = deterministicDump(
        ThreadPoolExecutor(serial).run(smallGrid()));

    ExecutorOptions parallel;
    parallel.workers = 4;
    const std::string four = deterministicDump(
        ThreadPoolExecutor(parallel).run(smallGrid()));

    EXPECT_EQ(one, four);
    // The dump really carries simulation payload, not just headers.
    EXPECT_NE(one.find("\"llc_misses\""), std::string::npos);
}

TEST(ThreadPoolExecutor, ThrowingJobBecomesFailedRecordAndSweepCompletes)
{
    std::vector<Job> jobs = smallGrid();
    Job bomb;
    bomb.key = "grid/bomb";
    bomb.seed = seedFor(bomb.key);
    bomb.run = [](const JobContext &) -> JobOutcome {
        throw std::runtime_error("injected failure");
    };
    jobs.insert(jobs.begin() + 1, std::move(bomb));

    ExecutorOptions options;
    options.workers = 3;
    const auto records = ThreadPoolExecutor(options).run(jobs);
    ASSERT_EQ(records.size(), jobs.size());

    unsigned ok = 0, failed = 0;
    for (const JobRecord &record : records) {
        if (record.key == "grid/bomb") {
            EXPECT_EQ(record.status, JobStatus::Failed);
            EXPECT_NE(record.error.find("injected failure"),
                      std::string::npos);
            ++failed;
        } else {
            EXPECT_EQ(record.status, JobStatus::Ok);
            ASSERT_TRUE(record.outcome.single.has_value());
            EXPECT_GT(record.outcome.single->llcAccesses, 0u);
            ++ok;
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(ok, jobs.size() - 1);
}

TEST(ThreadPoolExecutor, MissingRunCallableIsACapturedFailure)
{
    Job job;
    job.key = "no-run";
    const auto records = ThreadPoolExecutor().run({job});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].status, JobStatus::Failed);
    EXPECT_NE(records[0].error.find("exactly one of run / runMany"),
              std::string::npos);
}

TEST(ThreadPoolExecutor, SoftTimeoutMarksOverrunningJob)
{
    Job slow;
    slow.key = "slow";
    slow.seed = seedFor(slow.key);
    slow.timeoutSeconds = 1e-6;
    slow.run = [](const JobContext &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        JobOutcome outcome;
        outcome.metrics["done"] = 1.0;
        return outcome;
    };
    const auto records = ThreadPoolExecutor().run({slow});
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].status, JobStatus::TimedOut);
    EXPECT_NE(records[0].error.find("soft timeout"), std::string::npos);
    // The outcome still carries the completed work.
    EXPECT_EQ(records[0].outcome.metrics.at("done"), 1.0);
}

TEST(ThreadPoolExecutor, OnCompleteStreamsIntoSinkThreadSafely)
{
    ResultsSink sink("stream");
    ExecutorOptions options;
    options.workers = 4;
    options.onComplete = [&sink](const JobRecord &record) {
        sink.add(record);
    };
    const auto records = ThreadPoolExecutor(options).run(smallGrid());
    EXPECT_EQ(sink.size(), records.size());
    // sortedRecords orders by key regardless of completion order.
    const auto sorted = sink.sortedRecords();
    for (size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LT(sorted[i - 1].key, sorted[i].key);
}

TEST(Json, ScalarAndContainerRoundTrip)
{
    Json doc = Json::object();
    doc.set("bool", true);
    doc.set("int", static_cast<int64_t>(-42));
    doc.set("uint", static_cast<uint64_t>(18446744073709551615ull));
    doc.set("real", 0.1);
    doc.set("string", "esc \"quotes\" \\ and\nnewline\ttab");
    doc.set("null", Json());
    Json arr = Json::array();
    arr.push(1).push("two").push(Json::object().set("k", "v"));
    doc.set("arr", std::move(arr));

    for (int indent : {0, 2}) {
        const std::string text = doc.dump(indent);
        std::string error;
        const auto parsed = Json::parse(text, &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_TRUE(parsed->find("bool")->asBool());
        EXPECT_EQ(parsed->find("int")->asNumber(), -42.0);
        EXPECT_EQ(parsed->find("uint")->asUint(),
                  18446744073709551615ull);
        EXPECT_EQ(parsed->find("real")->asNumber(), 0.1);
        EXPECT_EQ(parsed->find("string")->asString(),
                  "esc \"quotes\" \\ and\nnewline\ttab");
        EXPECT_TRUE(parsed->find("null")->isNull());
        ASSERT_EQ(parsed->find("arr")->size(), 3u);
        EXPECT_EQ(parsed->find("arr")->at(1).asString(), "two");
        // Re-dumping the parse reproduces the original text exactly.
        EXPECT_EQ(parsed->dump(indent), text);
    }
}

TEST(Json, ParserRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
          "{\"a\" 1}", "nul", "[1]extra"}) {
        std::string error;
        EXPECT_FALSE(Json::parse(bad, &error).has_value())
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Json, UnicodeEscapeParses)
{
    const auto parsed = Json::parse("\"A\\u0042\\u00e9\"");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), "AB\xc3\xa9");
}

TEST(Json, IntegerBoundariesRoundTripExactly)
{
    // Seeds are full-width uint64s; a parse that detoured through a
    // double would corrupt anything above 2^53.
    const struct
    {
        const char *text;
        uint64_t expected;
    } unsignedCases[] = {
        {"9007199254740993", 9007199254740993ull},         // 2^53 + 1
        {"9223372036854775807", 9223372036854775807ull},   // 2^63 - 1
        {"9223372036854775808", 9223372036854775808ull},   // 2^63
        {"18446744073709551615", 18446744073709551615ull}, // 2^64 - 1
    };
    for (const auto &c : unsignedCases) {
        std::string error;
        const auto parsed = Json::parse(c.text, &error);
        ASSERT_TRUE(parsed.has_value()) << c.text << ": " << error;
        EXPECT_EQ(parsed->asUint(), c.expected);
        EXPECT_EQ(parsed->dump(), c.text);
    }

    std::string error;
    const auto min64 = Json::parse("-9223372036854775808", &error);
    ASSERT_TRUE(min64.has_value()) << error;
    EXPECT_EQ(min64->dump(), "-9223372036854775808");
    const auto neg = Json::parse("-9007199254740993", &error);
    ASSERT_TRUE(neg.has_value()) << error;
    EXPECT_EQ(neg->dump(), "-9007199254740993");
}

TEST(Json, OverflowingIntegerIsAParseError)
{
    // One past either 64-bit boundary must fail loudly, not silently
    // round through strtod.
    for (const char *bad : {"18446744073709551616",  // 2^64
                            "-9223372036854775809",  // -2^63 - 1
                            "99999999999999999999999999"}) {
        std::string error;
        EXPECT_FALSE(Json::parse(bad, &error).has_value())
            << "accepted: " << bad;
        EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    }
    // Huge magnitudes with an exponent are REAL tokens, still fine.
    const auto real = Json::parse("1e300");
    ASSERT_TRUE(real.has_value());
    EXPECT_EQ(real->asNumber(), 1e300);
}

TEST(ResultsSink, DocumentMatchesSchema)
{
    ExecutorOptions options;
    options.workers = 2;
    ResultsSink sink("schema_check");
    sink.setScale(0.25);
    options.onComplete = [&sink](const JobRecord &r) { sink.add(r); };
    ThreadPoolExecutor executor(options);
    sink.setWorkers(executor.workers());
    executor.run(smallGrid());

    std::string error;
    const auto doc = Json::parse(sink.toJson().dump(2), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    ASSERT_TRUE(doc->find("schema"));
    EXPECT_EQ(doc->find("schema")->asString(), kResultsSchemaV2);
    std::string verror;
    EXPECT_EQ(validateResultsDocument(*doc, &verror), 2) << verror;
    EXPECT_EQ(doc->find("experiment")->asString(), "schema_check");
    ASSERT_TRUE(doc->find("git"));
    EXPECT_TRUE(doc->find("git")->isString());
    EXPECT_EQ(doc->find("scale")->asNumber(), 0.25);
    EXPECT_EQ(doc->find("workers")->asUint(), 2u);
    ASSERT_TRUE(doc->find("jobs"));
    const Json &jobs = *doc->find("jobs");
    ASSERT_TRUE(jobs.isArray());
    EXPECT_EQ(doc->find("job_count")->asUint(), jobs.size());
    ASSERT_EQ(jobs.size(), 4u);

    std::set<std::string> keys;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const Json &job = jobs.at(i);
        ASSERT_TRUE(job.find("key"));
        keys.insert(job.find("key")->asString());
        EXPECT_NE(job.find("seed")->asUint(), 0u);
        EXPECT_EQ(job.find("status")->asString(), "ok");
        ASSERT_TRUE(job.find("seconds"));
        const Json *single = job.find("single");
        ASSERT_TRUE(single);
        for (const char *field :
             {"benchmark", "policy", "ipc", "mpki", "llc_accesses",
              "llc_hits", "llc_misses", "llc_bypasses", "bypass_fraction"})
            EXPECT_TRUE(single->find(field)) << field;
        if (i > 0) {
            EXPECT_LT(jobs.at(i - 1).find("key")->asString(),
                      job.find("key")->asString());
        }
    }
    EXPECT_EQ(keys.size(), 4u);
}

TEST(ResultsSink, WriteFileAndEnvKnob)
{
    ResultsSink sink("file_check");
    JobRecord record;
    record.key = "k";
    record.seed = 7;
    record.status = JobStatus::Ok;
    sink.add(record);

    const std::string dir = ::testing::TempDir();
    std::string path;
    ASSERT_TRUE(sink.writeFile(dir, &path));
    EXPECT_NE(path.find("BENCH_file_check.json"), std::string::npos);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path.c_str());

    const auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("experiment")->asString(), "file_check");

    // "none" disables output.
    EXPECT_FALSE(sink.writeFile("none"));
}

TEST(Suites, RegistryHasThePortedFiguresAndUniqueJobKeys)
{
    for (const char *name :
         {"fig10_single_core", "fig4_static_pdp", "fig12_partitioning",
          "smoke"}) {
        const Suite *suite = findSuite(name);
        ASSERT_NE(suite, nullptr) << name;
        SuiteOptions options;
        options.scale = 0.01;
        const auto jobs = suite->buildJobs(options);
        EXPECT_FALSE(jobs.empty()) << name;
        std::set<std::string> keys;
        for (const Job &job : jobs) {
            EXPECT_TRUE(keys.insert(job.key).second)
                << name << ": duplicate key " << job.key;
            EXPECT_NE(job.seed, 0u) << job.key;
            EXPECT_TRUE(job.run != nullptr) << job.key;
        }
    }
    EXPECT_EQ(findSuite("no_such_suite"), nullptr);
}

TEST(Suites, SmokeSuiteRunsEndToEndAndWritesJson)
{
    const Suite *suite = findSuite("smoke");
    ASSERT_NE(suite, nullptr);
    SuiteOptions options;
    options.scale = 0.02;
    options.workers = 2;
    options.jsonDir = ::testing::TempDir();

    std::ostringstream out;
    EXPECT_EQ(runSuite(*suite, options, out), 0);
    EXPECT_NE(out.str().find("smoke"), std::string::npos);
    EXPECT_NE(out.str().find("ok"), std::string::npos);

    std::string dir = options.jsonDir;
    if (dir.back() != '/')
        dir += '/';
    const std::string path = dir + "BENCH_smoke.json";
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 20, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path.c_str());

    const auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->asString(), kResultsSchemaV2);
    std::string verror;
    EXPECT_EQ(validateResultsDocument(*doc, &verror), 2) << verror;
    EXPECT_GT(doc->find("jobs")->size(), 0u);
}

namespace
{

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text(1 << 20, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    return text;
}

/** A structurally minimal results document at `schema`. */
Json
minimalDocument(const char *schema, bool with_telemetry)
{
    Json job = Json::object();
    job.set("key", "k").set("seed", uint64_t{7}).set("status", "ok");
    if (with_telemetry) {
        Json telemetry = Json::object();
        telemetry.set("interval", uint64_t{128});
        telemetry.set("epochs", Json::array());
        job.set("telemetry", std::move(telemetry));
    }
    Json jobs = Json::array();
    jobs.push(std::move(job));
    Json doc = Json::object();
    doc.set("schema", schema)
        .set("experiment", "synthetic")
        .set("job_count", uint64_t{1})
        .set("jobs", std::move(jobs));
    return doc;
}

} // namespace

TEST(ResultsSink, GoldenV1DocumentStillValidates)
{
    // A frozen pre-telemetry document (the schema this repo shipped
    // before v2): new readers must keep accepting it.
    const std::string path =
        std::string(PDP_TEST_DATA_DIR) + "/golden/BENCH_v1_example.json";
    const std::string text = readWholeFile(path);
    ASSERT_FALSE(text.empty()) << path;

    std::string error;
    const auto doc = Json::parse(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(validateResultsDocument(*doc, &error), 1) << error;
    EXPECT_EQ(doc->find("experiment")->asString(), "golden_v1");
    EXPECT_EQ(doc->find("jobs")->size(), 2u);
}

TEST(ResultsSink, ValidatorVersionsAndRejections)
{
    std::string error;
    EXPECT_EQ(validateResultsDocument(minimalDocument(kResultsSchemaV1,
                                                      false),
                                      &error),
              1)
        << error;
    EXPECT_EQ(validateResultsDocument(minimalDocument(kResultsSchemaV2,
                                                      true),
                                      &error),
              2)
        << error;

    // A telemetry section is only legal in v2.
    EXPECT_EQ(validateResultsDocument(minimalDocument(kResultsSchemaV1,
                                                      true),
                                      &error),
              0);
    EXPECT_FALSE(error.empty());

    // Unknown schema string.
    EXPECT_EQ(validateResultsDocument(minimalDocument("bogus/v9", false),
                                      &error),
              0);

    // job_count disagreeing with the jobs array.
    Json doc = minimalDocument(kResultsSchemaV2, false);
    doc.set("job_count", uint64_t{5});
    EXPECT_EQ(validateResultsDocument(doc, &error), 0);

    // Not an object at all.
    EXPECT_EQ(validateResultsDocument(Json::array(), &error), 0);
}

TEST(ResultsSink, TelemetryRoundTripsThroughV2Document)
{
    telemetry::RunTelemetry run;
    run.interval = 128;
    telemetry::EpochRecord epoch;
    epoch.epoch = 0;
    epoch.accessCount = 128;
    epoch.intervalAccesses = 128;
    epoch.intervalHits = 60;
    epoch.intervalMisses = 68;
    epoch.intervalBypasses = 12;
    epoch.policy.setScalar("pd", 64.0);
    epoch.policy.setSeries("rdd", {3.0, 2.0, 1.0});
    epoch.threadOccupancy = {42};
    run.epochs.push_back(epoch);
    telemetry::TraceEvent change;
    change.type = "pd_change";
    change.accessCount = 128;
    change.fields = {{"from", 256.0}, {"to", 64.0}};
    run.events.push_back(change);
    telemetry::TraceEvent timing;
    timing.type = "phase:warmup";
    timing.isVolatile = true;
    timing.fields = {{"seconds", 0.25}};
    run.events.push_back(timing);

    JobRecord record;
    record.key = "t/roundtrip";
    record.seed = 3;
    record.status = JobStatus::Ok;
    record.outcome.single = SimResult{};
    record.outcome.single->telemetry =
        std::make_shared<telemetry::RunTelemetry>(run);

    ResultsSink sink("round_trip");
    sink.add(record);

    std::string error;
    const auto doc = Json::parse(sink.toJson().dump(2), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(validateResultsDocument(*doc, &error), 2) << error;

    const Json &job = doc->find("jobs")->at(0);
    const Json *telemetry = job.find("telemetry");
    ASSERT_TRUE(telemetry);
    EXPECT_EQ(telemetry->find("interval")->asUint(), 128u);
    const Json &ep = telemetry->find("epochs")->at(0);
    EXPECT_EQ(ep.find("accesses")->asUint(), 128u);
    EXPECT_EQ(ep.find("hits")->asUint(), 60u);
    EXPECT_EQ(ep.find("policy")->find("pd")->asNumber(), 64.0);
    ASSERT_TRUE(ep.find("series")->find("rdd"));
    EXPECT_EQ(ep.find("series")->find("rdd")->size(), 3u);
    EXPECT_EQ(ep.find("thread_occupancy")->at(0).asUint(), 42u);
    ASSERT_TRUE(telemetry->find("events"));
    EXPECT_EQ(telemetry->find("events")->size(), 2u);

    // The deterministic dump keeps the epochs but filters the
    // wall-clock phase event.
    const auto det = Json::parse(sink.toJson(false).dump(2), &error);
    ASSERT_TRUE(det.has_value()) << error;
    const Json *dtel = det->find("jobs")->at(0).find("telemetry");
    ASSERT_TRUE(dtel);
    EXPECT_EQ(dtel->find("epochs")->size(), 1u);
    ASSERT_TRUE(dtel->find("events"));
    EXPECT_EQ(dtel->find("events")->size(), 1u);
    EXPECT_EQ(dtel->find("events")->at(0).find("type")->asString(),
              "pd_change");
}

TEST(Suites, FilteredRunExecutesSubsetWithGenericReport)
{
    const Suite *suite = findSuite("fig10_single_core");
    ASSERT_NE(suite, nullptr);
    SuiteOptions options;
    options.scale = 0.01;
    options.workers = 2;
    options.filter = "450.soplex/DIP";
    options.jsonDir = "none";

    std::ostringstream out;
    EXPECT_EQ(runSuite(*suite, options, out), 0);
    EXPECT_NE(out.str().find("filtered"), std::string::npos);
    EXPECT_NE(out.str().find("fig10/450.soplex/DIP"), std::string::npos);
}

/**
 * @file
 * Parameterized property tests (TEST_P sweeps) over policies, protecting
 * distances and sampler configurations:
 *
 *  - cache-state invariants hold for every policy under random traffic;
 *  - the PDP protection guarantee holds for a sweep of PD and n_c;
 *  - the RD sampler is exact for every (FIFO size, insertion rate);
 *  - the E(d_p) model is well-formed for random RDDs;
 *  - the pdproc microprogram matches its reference across geometries.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.h"
#include "core/hit_rate_model.h"
#include "core/pdp_policy.h"
#include "core/rd_sampler.h"
#include "hw/pdproc.h"
#include "sim/policy_factory.h"
#include "util/rng.h"

using namespace pdp;

namespace
{

CacheConfig
smallConfig(bool bypass)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 8 * 64; // 64 sets, 8 ways
    cfg.ways = 8;
    cfg.allowBypass = bypass;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Invariants under random traffic, for every policy.
// ---------------------------------------------------------------------

class PolicyInvariantTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyInvariantTest, RandomTrafficKeepsStateConsistent)
{
    auto policy = makePolicy(GetParam());
    const bool bypass = policy->usesBypass();
    Cache cache(smallConfig(bypass), std::move(policy));
    Rng rng(0x1000 + std::hash<std::string>{}(GetParam()));

    uint64_t hits = 0, misses = 0, bypasses = 0;
    for (int i = 0; i < 60000; ++i) {
        AccessContext ctx;
        ctx.lineAddr = rng.below(2000);
        ctx.pc = 0x400000 + 4 * rng.below(16);
        ctx.threadId = static_cast<uint8_t>(rng.below(4));
        ctx.isWrite = rng.chance(0.3);
        const AccessOutcome out = cache.access(ctx);
        hits += out.hit;
        misses += !out.hit;
        bypasses += out.bypassed;
        // A hit must leave the line resident; a non-bypassed miss
        // installs it; a bypassed miss must not.
        if (out.bypassed)
            EXPECT_FALSE(cache.contains(ctx.lineAddr));
        else
            EXPECT_TRUE(cache.contains(ctx.lineAddr));
        // An eviction never reports the just-accessed line.
        if (out.evictedValid) {
            EXPECT_NE(out.evictedAddr, ctx.lineAddr);
        }
    }
    EXPECT_EQ(cache.stats().hits, hits);
    EXPECT_EQ(cache.stats().misses, misses);
    EXPECT_EQ(cache.stats().bypasses, bypasses);
    EXPECT_EQ(cache.stats().accesses, hits + misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariantTest,
    ::testing::Values("LRU", "FIFO", "Random", "LIP", "BIP", "DIP",
                      "SRRIP", "BRRIP", "DRRIP", "EELRU", "SDP", "SHiP",
                      "PDP-2", "PDP-3", "PDP-8", "PDP-8-NB", "PDP-1INS"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// The protection guarantee: a line protected with PD p survives at
// least p accesses to its set, for every (PD, n_c) combination.
// ---------------------------------------------------------------------

class ProtectionSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, unsigned>>
{
};

TEST_P(ProtectionSweepTest, ProtectedLineSurvivesPdAccesses)
{
    const uint32_t pd = std::get<0>(GetParam());
    const unsigned nc = std::get<1>(GetParam());

    // The n_c-bit RPD field can guarantee at most this many accesses of
    // protection (one quantum is lost to aging phase when S_d > 1, one
    // count to the self-decrement when S_d == 1).
    const uint32_t sd = std::max(1u, 256u >> nc);
    const uint32_t limit = sd > 1 ? ((1u << nc) - 2) * sd
                                  : (1u << nc) - 1;
    if (pd > limit)
        GTEST_SKIP() << "pd exceeds the n_c protection capability";

    PdpParams params;
    params.dynamic = false;
    params.staticPd = pd;
    params.ncBits = nc;
    params.bypass = true;

    CacheConfig cfg;
    cfg.sizeBytes = 1 * 4 * 64; // one set, 4 ways
    cfg.ways = 4;
    cfg.allowBypass = true;
    Cache cache(cfg, std::make_unique<PdpPolicy>(params));

    // Insert the probe line, then stream pd-1 distinct lines through the
    // set; the probe must still be resident at its reuse.
    AccessContext probe;
    probe.lineAddr = 0x5000;
    cache.access(probe);
    for (uint32_t i = 0; i + 1 < pd; ++i) {
        AccessContext ctx;
        ctx.lineAddr = 0x9000 + i;
        cache.access(ctx);
    }
    EXPECT_TRUE(cache.contains(0x5000))
        << "pd=" << pd << " nc=" << nc;
}

INSTANTIATE_TEST_SUITE_P(
    PdTimesNc, ProtectionSweepTest,
    ::testing::Combine(::testing::Values(4u, 16u, 40u, 72u, 100u, 128u,
                                         200u, 256u),
                       ::testing::Values(2u, 3u, 5u, 8u)));

// ---------------------------------------------------------------------
// Sampler exactness across geometries.
// ---------------------------------------------------------------------

class SamplerSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(SamplerSweepTest, MeasuredDistancesAreExact)
{
    const uint32_t entries = std::get<0>(GetParam());
    const uint32_t rate = std::get<1>(GetParam());

    RdSamplerParams params;
    params.sampledSets = 1;
    params.fifoEntries = entries;
    params.insertionRate = rate;
    params.dMax = 256;
    RdSampler sampler(params, 1);

    Rng rng(entries * 131 + rate);
    std::unordered_map<uint64_t, uint64_t> last;
    uint64_t count = 0;
    uint64_t verified = 0;
    for (int i = 0; i < 80000; ++i) {
        const uint64_t line = rng.below(96);
        ++count;
        const auto it = last.find(line);
        const uint64_t true_rd = it == last.end() ? 0 : count - it->second;
        last[line] = count;
        const RdObservation obs = sampler.observe(0, line);
        if (obs.rd && true_rd > 0 && true_rd <= 256) {
            EXPECT_EQ(*obs.rd, true_rd)
                << "entries=" << entries << " rate=" << rate;
            ++verified;
        }
    }
    EXPECT_GT(verified, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SamplerSweepTest,
    ::testing::Combine(::testing::Values(8u, 32u, 64u, 256u),
                       ::testing::Values(1u, 2u, 8u, 16u)));

// ---------------------------------------------------------------------
// Model well-formedness on random RDDs.
// ---------------------------------------------------------------------

class ModelPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ModelPropertyTest, CurveAndBestPdAreWellFormed)
{
    Rng rng(GetParam());
    RdCounterArray rdd(256, 4);
    const int hits = 200 + static_cast<int>(rng.below(3000));
    for (int i = 0; i < hits; ++i)
        rdd.recordHit(1 + static_cast<uint32_t>(rng.below(256)));
    const int total = hits + static_cast<int>(rng.below(4000));
    for (int i = 0; i < total; ++i)
        rdd.recordAccess();

    HitRateModel model(16);
    const auto curve = model.curve(rdd);
    ASSERT_EQ(curve.size(), rdd.numBuckets());
    for (const EPoint &p : curve) {
        EXPECT_GE(p.e, 0.0);
        EXPECT_LE(p.e, 1.0); // E = hits/occupancy <= 1 since occ >= hits
        EXPECT_GE(p.dp, 4u);
        EXPECT_LE(p.dp, 256u);
    }
    const uint32_t best = model.bestPd(rdd);
    EXPECT_GE(best, 4u);
    EXPECT_LE(best, 256u);
    // bestPd's E is within the plateau tolerance of the true maximum.
    double max_e = 0.0, best_e = 0.0;
    for (const EPoint &p : curve) {
        max_e = std::max(max_e, p.e);
        if (p.dp == best)
            best_e = p.e;
    }
    EXPECT_GE(best_e, max_e * 0.95 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomRdds, ModelPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

// ---------------------------------------------------------------------
// Microprogram equivalence across counter geometries and random RDDs.
// ---------------------------------------------------------------------

class PdProcSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>>
{
};

TEST_P(PdProcSweepTest, MatchesFixedPointReference)
{
    const uint32_t step = std::get<0>(GetParam());
    const uint64_t seed = std::get<1>(GetParam());
    Rng rng(seed * 977 + step);
    RdCounterArray rdd(256, step);
    for (int i = 0; i < 2500; ++i)
        rdd.recordHit(1 + static_cast<uint32_t>(rng.below(256)));
    for (int i = 0; i < 4000; ++i)
        rdd.recordAccess();
    EXPECT_EQ(pdprocBestPd(rdd).pd, pdprocReferenceBestPd(rdd));
}

INSTANTIATE_TEST_SUITE_P(
    StepsAndSeeds, PdProcSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Range<uint64_t>(1, 9)));

/**
 * @file
 * Tests for the simulation layer: the timing model, single-core runs
 * and their metrics, the multi-core simulator, the static-PD search,
 * the stream prefetcher and the overhead model.
 */

#include <gtest/gtest.h>

#include "hw/overhead_model.h"
#include "prefetch/stream_prefetcher.h"
#include "sim/multi_core_sim.h"
#include "sim/single_core_sim.h"
#include "sim/static_pd_search.h"
#include "sim/timing_model.h"
#include "trace/spec_suite.h"
#include "util/rng.h"

using namespace pdp;

TEST(TimingModel, BaseIpcEqualsWidthWithoutMisses)
{
    TimingModel timing;
    for (int i = 0; i < 1000; ++i)
        timing.onAccess(40, HitLevel::L2);
    EXPECT_NEAR(timing.ipc(), 4.0, 0.01);
}

TEST(TimingModel, MissesCostCycles)
{
    TimingModel hit_model, miss_model;
    for (int i = 0; i < 1000; ++i) {
        hit_model.onAccess(40, HitLevel::L2);
        miss_model.onAccess(40, HitLevel::Memory);
    }
    EXPECT_LT(miss_model.ipc(), hit_model.ipc() * 0.5);
}

TEST(TimingModel, ClusteredMissesOverlap)
{
    // Same miss count; the clustered stream (short gaps) pays less per
    // miss thanks to memory-level parallelism.
    TimingModel clustered, isolated;
    for (int i = 0; i < 100; ++i) {
        clustered.onAccess(10, HitLevel::Memory);
        isolated.onAccess(500, HitLevel::Memory);
    }
    const uint64_t clustered_stall =
        clustered.cycles() - clustered.instructions() / 4;
    const uint64_t isolated_stall =
        isolated.cycles() - isolated.instructions() / 4;
    EXPECT_LT(clustered_stall, isolated_stall);
}

TEST(TimingModel, LlcHitCheaperThanMemory)
{
    TimingModel llc, mem;
    for (int i = 0; i < 100; ++i) {
        llc.onAccess(40, HitLevel::Llc);
        mem.onAccess(40, HitLevel::Memory);
    }
    EXPECT_GT(llc.ipc(), mem.ipc());
}

TEST(SingleCoreSim, ProducesConsistentMetrics)
{
    SimConfig config;
    config.accesses = 200000;
    config.warmup = 50000;
    const SimResult r = runSingleCore("403.gcc", "DIP", config);
    EXPECT_EQ(r.benchmark, "403.gcc");
    EXPECT_EQ(r.policy, "DIP");
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.mpki, 0.0);
    EXPECT_EQ(r.llcHits + r.llcMisses, r.llcAccesses);
    EXPECT_LE(r.llcBypasses, r.llcMisses);
}

TEST(SingleCoreSim, DeterministicAcrossRuns)
{
    SimConfig config;
    config.accesses = 100000;
    config.warmup = 20000;
    const SimResult a = runSingleCore("450.soplex", "PDP-8", config);
    const SimResult b = runSingleCore("450.soplex", "PDP-8", config);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SingleCoreSim, PdpBeatsLruOnThrashingBenchmark)
{
    SimConfig config;
    config.accesses = 600000;
    config.warmup = 300000;
    const SimResult lru = runSingleCore("436.cactusADM", "LRU", config);
    const SimResult pdp = runSingleCore("436.cactusADM", "PDP-8", config);
    EXPECT_LT(pdp.llcMisses, lru.llcMisses * 0.85);
    EXPECT_GT(pdp.ipc, lru.ipc);
}

TEST(StaticPdSearch, FindsTheSweetSpot)
{
    SimConfig config;
    config.accesses = 500000;
    config.warmup = 250000;
    const StaticPdResult r =
        bestStaticPd("436.cactusADM", true, config, {16, 48, 80, 160});
    EXPECT_EQ(r.bestPd, 80u);
    EXPECT_EQ(r.sweep.size(), 4u);
}

TEST(MultiCoreSim, MetricsAreCoherent)
{
    WorkloadSpec spec;
    spec.benchmarks = {"403.gcc", "470.lbm"};
    MultiCoreConfig config;
    config.cores = 2;
    config.accessesPerThread = 120000;
    config.warmupPerThread = 40000;
    const MultiCoreResult r = runMultiCore(spec, "TA-DRRIP", config);
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.weightedIpc, 0.0);
    EXPECT_GT(r.harmonicFairness, 0.0);
    // Weighted IPC <= N (a thread cannot beat its stand-alone run by
    // much; allow slack for timing-model noise).
    EXPECT_LT(r.weightedIpc, 2.4);
}

TEST(MultiCoreSim, SharedCacheContentionHurts)
{
    WorkloadSpec spec;
    spec.benchmarks = {"482.sphinx3", "429.mcf", "470.lbm", "433.milc"};
    MultiCoreConfig config;
    config.cores = 4;
    config.accessesPerThread = 120000;
    config.warmupPerThread = 40000;
    const MultiCoreResult r = runMultiCore(spec, "LRU", config);
    // Under contention each thread is below its stand-alone IPC.
    for (const ThreadOutcome &t : r.threads) {
        const double single = standaloneIpc(t.benchmark, config);
        EXPECT_LE(t.ipc, single * 1.05) << t.benchmark;
    }
}

TEST(MultiCoreSim, WorkloadRunIsDeterministic)
{
    WorkloadSpec spec;
    spec.benchmarks = {"403.gcc", "456.hmmer"};
    MultiCoreConfig config;
    config.cores = 2;
    config.accessesPerThread = 80000;
    config.warmupPerThread = 20000;
    const MultiCoreResult a = runMultiCore(spec, "PDP-3", config);
    const MultiCoreResult b = runMultiCore(spec, "PDP-3", config);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(StreamPrefetcher, DetectsAscendingStream)
{
    StreamPrefetcher prefetcher;
    std::vector<uint64_t> issued;
    for (uint64_t i = 0; i < 10; ++i) {
        const auto p = prefetcher.onDemand(1000 + i, true);
        issued.insert(issued.end(), p.begin(), p.end());
    }
    ASSERT_FALSE(issued.empty());
    // Prefetches run ahead of the demand stream.
    for (uint64_t addr : issued)
        EXPECT_GT(addr, 1000u);
}

TEST(StreamPrefetcher, IgnoresRandomTraffic)
{
    StreamPrefetcher prefetcher;
    Rng rng(9);
    uint64_t issued = 0;
    for (int i = 0; i < 1000; ++i)
        issued += prefetcher.onDemand(rng.next(), true).size();
    EXPECT_LT(issued, 50u);
}

TEST(StreamPrefetcher, DescendingStreamsWork)
{
    StreamPrefetcher prefetcher;
    bool any_below = false;
    for (uint64_t i = 0; i < 20; ++i) {
        const auto p = prefetcher.onDemand(100000 - i, true);
        for (uint64_t addr : p)
            any_below |= addr < 100000 - i;
    }
    EXPECT_TRUE(any_below);
}

TEST(OverheadModel, MatchesPaperBallpark)
{
    const OverheadModel model(CacheConfig::paperLlc());
    const double pdp2 = model.report("PDP-2").percentOfLlc;
    const double pdp3 = model.report("PDP-3").percentOfLlc;
    const double drrip = model.report("DRRIP").percentOfLlc;
    const double dip = model.report("DIP").percentOfLlc;
    // Paper Sec. 6.2: PDP-2 ~0.6%, PDP-3 ~0.8%, DRRIP ~0.4%, DIP ~0.8%.
    EXPECT_NEAR(pdp2, 0.6, 0.2);
    EXPECT_NEAR(pdp3, 0.8, 0.2);
    EXPECT_NEAR(drrip, 0.4, 0.15);
    EXPECT_NEAR(dip, 0.8, 0.25);
    EXPECT_LT(pdp2, pdp3);
}

TEST(OverheadModel, UnknownPolicyThrows)
{
    const OverheadModel model(CacheConfig::paperLlc());
    EXPECT_THROW(model.report("nope"), std::invalid_argument);
}

/**
 * @file
 * Tests for the synthetic trace layer: pattern primitives, mixtures,
 * generator determinism/rewind, and the RDD fingerprints of the suite
 * (the calibration contract every experiment depends on).
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/rd_profiler.h"
#include "policies/basic.h"
#include "trace/patterns.h"
#include "trace/spec_suite.h"
#include "trace/workload.h"
#include "util/rng.h"

using namespace pdp;

TEST(Patterns, LoopCyclesDeterministically)
{
    LoopPattern loop(4);
    loop.bind(0, 0, 1);
    Rng rng(1);
    std::vector<uint64_t> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(loop.nextLine(rng));
    EXPECT_EQ(first[0], first[4]);
    EXPECT_EQ(first[3], first[7]);
    std::set<uint64_t> distinct(first.begin(), first.end());
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(Patterns, LoopDriftShiftsWindow)
{
    LoopPattern loop(4, 1, /*drift_period=*/8);
    loop.bind(0, 0, 1);
    Rng rng(1);
    std::set<uint64_t> lines;
    for (int i = 0; i < 64; ++i)
        lines.insert(loop.nextLine(rng));
    // With drift, more than the base working set is touched over time.
    EXPECT_GT(lines.size(), 4u);
}

TEST(Patterns, ScanNeverRepeatsWithinRun)
{
    ScanPattern scan;
    scan.bind(0, 0, 1);
    Rng rng(1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        EXPECT_TRUE(seen.insert(scan.nextLine(rng)).second);
}

TEST(Patterns, ChaseStaysInWorkingSet)
{
    ChasePattern chase(100);
    chase.bind(1 << 20, 0, 1);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t line = chase.nextLine(rng);
        EXPECT_GE(line, 1u << 20);
        EXPECT_LT(line, (1u << 20) + 100);
    }
}

TEST(Patterns, HotColdConcentratesOnHotSet)
{
    HotColdPattern pattern({{10, 0.9}, {1000, 0.1}});
    pattern.bind(0, 0, 1);
    Rng rng(3);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot += pattern.nextLine(rng) < 10;
    // Hot lines get their own 90% plus a share of the cold draws.
    EXPECT_GT(static_cast<double>(hot) / n, 0.85);
}

TEST(Patterns, MixtureRespectsWeights)
{
    std::vector<MixtureComponent> comps;
    auto a = std::make_unique<LoopPattern>(4);
    a->bind(0, 0, 1);
    auto b = std::make_unique<ScanPattern>();
    b->bind(1ull << 30, 0, 1);
    comps.push_back({0.75, std::move(a)});
    comps.push_back({0.25, std::move(b)});
    MixturePattern mix(std::move(comps));
    Rng rng(4);
    int low = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        low += mix.nextLine(rng) < (1ull << 30);
    EXPECT_NEAR(static_cast<double>(low) / n, 0.75, 0.02);
}

TEST(SpecSuite, RegistryIsConsistent)
{
    EXPECT_GE(SpecSuite::all().size(), 23u);
    for (const auto &info : SpecSuite::all()) {
        EXPECT_TRUE(SpecSuite::contains(info.name));
        EXPECT_FALSE(info.description.empty());
    }
    EXPECT_FALSE(SpecSuite::contains("999.nope"));
    EXPECT_THROW(SpecSuite::make("999.nope"), std::invalid_argument);
    EXPECT_EQ(SpecSuite::singleCoreNames().size(), 18u);
    EXPECT_EQ(SpecSuite::multiCoreNames().size(), 16u);
    EXPECT_EQ(SpecSuite::phasedNames().size(), 5u);
}

TEST(SpecSuite, GeneratorIsDeterministicAndRewindable)
{
    auto a = SpecSuite::make("403.gcc");
    auto b = SpecSuite::make("403.gcc");
    for (int i = 0; i < 1000; ++i) {
        const Access x = a->next();
        const Access y = b->next();
        EXPECT_EQ(x.lineAddr, y.lineAddr);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.instrGap, y.instrGap);
    }
    const Access first = SpecSuite::make("403.gcc")->next();
    a->reset();
    const Access again = a->next();
    EXPECT_EQ(first.lineAddr, again.lineAddr);
}

TEST(SpecSuite, InstancesUseDisjointAddressSpaces)
{
    auto a = SpecSuite::make("429.mcf", 1, 0, 1);
    auto b = SpecSuite::make("429.mcf", 1, 1, 2);
    std::set<uint64_t> lines_a;
    for (int i = 0; i < 5000; ++i)
        lines_a.insert(a->next().lineAddr);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(lines_a.count(b->next().lineAddr), 0u);
}

namespace
{

/** Exact LLC-input RDD fingerprint of a benchmark. */
struct Fingerprint
{
    uint32_t peak;
    double covered;
};

Fingerprint
fingerprint(const std::string &bench, uint64_t accesses = 1'200'000)
{
    auto gen = SpecSuite::make(bench);
    Cache l2(CacheConfig::paperL2(), std::make_unique<LruPolicy>());
    RdProfiler profiler(2048, 256);
    for (uint64_t i = 0; i < accesses; ++i) {
        const Access a = gen->next();
        AccessContext ctx;
        ctx.lineAddr = a.lineAddr;
        if (!l2.access(ctx).hit)
            profiler.observe(a.lineAddr & 2047, a.lineAddr);
    }
    return {profiler.peakRd(), profiler.coveredFraction()};
}

} // namespace

TEST(SuiteFingerprints, CactusAdmPeakNear72)
{
    const Fingerprint fp = fingerprint("436.cactusADM");
    EXPECT_GE(fp.peak, 56u);
    EXPECT_LE(fp.peak, 90u);
    EXPECT_GT(fp.covered, 0.5);
}

TEST(SuiteFingerprints, SphinxPeakNear100)
{
    const Fingerprint fp = fingerprint("482.sphinx3");
    EXPECT_GE(fp.peak, 80u);
    EXPECT_LE(fp.peak, 125u);
}

TEST(SuiteFingerprints, XalancWindowsPeakInOrder)
{
    const Fingerprint w2 = fingerprint("483.xalancbmk.2");
    const Fingerprint w3 = fingerprint("483.xalancbmk.3");
    EXPECT_GE(w2.peak, 70u);
    EXPECT_LE(w2.peak, 105u);
    EXPECT_GE(w3.peak, 100u);
    EXPECT_LE(w3.peak, 150u);
}

TEST(SuiteFingerprints, StreamingBenchmarksHaveLowCoverage)
{
    EXPECT_LT(fingerprint("433.milc").covered, 0.35);
    EXPECT_LT(fingerprint("470.lbm").covered, 0.35);
}

TEST(SuiteFingerprints, AstarIsLruFriendly)
{
    // Most reuse within a short distance: LRU must already perform well.
    auto gen = SpecSuite::make("473.astar");
    HierarchyConfig cfg;
    Hierarchy h(cfg, std::make_unique<LruPolicy>());
    for (int i = 0; i < 600000; ++i)
        h.access(gen->next());
    EXPECT_GT(h.llc().stats().hitRate(), 0.5);
}

TEST(Workloads, DeterministicAndWellFormed)
{
    const auto a = randomWorkloads(8, 4, 42);
    const auto b = randomWorkloads(8, 4, 42);
    ASSERT_EQ(a.size(), 8u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
        EXPECT_EQ(a[i].benchmarks.size(), 4u);
        for (const auto &bench : a[i].benchmarks)
            EXPECT_TRUE(SpecSuite::contains(bench));
    }
    EXPECT_NE(randomWorkloads(1, 4, 1)[0].benchmarks,
              randomWorkloads(1, 4, 2)[0].benchmarks);
}

TEST(Workloads, InstantiateStampsThreadIds)
{
    const auto spec = randomWorkloads(1, 4, 7)[0];
    auto gens = instantiate(spec);
    ASSERT_EQ(gens.size(), 4u);
    for (uint8_t t = 0; t < 4; ++t)
        EXPECT_EQ(gens[t]->next().threadId, t);
}

/**
 * @file
 * Tests for the telemetry subsystem (src/telemetry/): metrics-registry
 * semantics, the bounded event ring, epoch sampling end-to-end through
 * the single- and multi-core simulators, event derivation, and the
 * guarantee that sampling never perturbs simulation results.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/multi_core_sim.h"
#include "sim/single_core_sim.h"
#include "telemetry/epoch_sampler.h"
#include "telemetry/event_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/source.h"
#include "trace/spec_suite.h"

using namespace pdp;
using namespace pdp::telemetry;

TEST(MetricsRegistry, HandlesAreStableAndSnapshotIsSorted)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("test.z_counter");
    Counter &again = registry.counter("test.z_counter");
    EXPECT_EQ(&c, &again);

    c.add(3);
    c.add(2);
    registry.gauge("test.a_gauge").set(1.5);
    telemetry::Histogram &h = registry.histogram("test.m_hist");
    h.observe(1);
    h.observe(1024);

    const auto snap = registry.snapshot();
    if (kCompiled) {
        ASSERT_EQ(snap.size(), 3u);
        // Sorted by name, independent of registration order.
        EXPECT_EQ(snap[0].name, "test.a_gauge");
        EXPECT_EQ(snap[1].name, "test.m_hist");
        EXPECT_EQ(snap[2].name, "test.z_counter");
        EXPECT_EQ(snap[0].value, 1.5);
        EXPECT_EQ(snap[1].count, 2u);
        EXPECT_EQ(snap[2].count, 5u);
    } else {
        // Compiled-out builds still register handles; updates are no-ops.
        ASSERT_EQ(snap.size(), 3u);
        EXPECT_EQ(c.value(), 0u);
        EXPECT_EQ(snap[2].count, 0u);
    }
}

TEST(MetricsRegistry, VolatileMetricsCanBeFiltered)
{
    if (!kCompiled)
        GTEST_SKIP() << "telemetry compiled out";
    MetricsRegistry registry;
    registry.counter("stable").add(1);
    registry.counter("wallclock", /*volatile_metric=*/true).add(1);

    EXPECT_EQ(registry.snapshot(/*includeVolatile=*/true).size(), 2u);
    const auto filtered = registry.snapshot(/*includeVolatile=*/false);
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].name, "stable");

    registry.resetAll();
    EXPECT_EQ(registry.counter("stable").value(), 0u);
}

TEST(Snapshot, SetReplacesExistingNames)
{
    Snapshot snap;
    snap.setScalar("pd", 64.0);
    snap.setScalar("pd", 72.0);
    snap.setSeries("rdd", {1.0});
    snap.setSeries("rdd", {2.0, 3.0});
    ASSERT_EQ(snap.scalars.size(), 1u);
    EXPECT_EQ(*snap.scalar("pd"), 72.0);
    ASSERT_EQ(snap.series.size(), 1u);
    EXPECT_EQ(snap.findSeries("rdd")->size(), 2u);
    EXPECT_EQ(snap.scalar("absent"), nullptr);
    EXPECT_EQ(snap.findSeries("absent"), nullptr);
}

TEST(EventTrace, RingDropsOldestAndCounts)
{
    EventTrace trace(4);
    for (int i = 0; i < 7; ++i) {
        TraceEvent event;
        event.type = "e";
        event.accessCount = static_cast<uint64_t>(i);
        trace.record(std::move(event));
    }
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.dropped(), 3u);
    const auto events = trace.chronological();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().accessCount, 3u); // oldest three were dropped
    EXPECT_EQ(events.back().accessCount, 6u);
}

TEST(EventTrace, ScopedPhaseTimerRecordsVolatileEvent)
{
    EventTrace trace;
    {
        ScopedPhaseTimer timer(&trace, "warmup", 42);
    }
    ASSERT_EQ(trace.size(), 1u);
    const auto events = trace.chronological();
    EXPECT_EQ(events[0].type, "phase:warmup");
    EXPECT_TRUE(events[0].isVolatile);
    EXPECT_EQ(events[0].accessCount, 42u);
    ASSERT_EQ(events[0].fields.size(), 1u);
    EXPECT_EQ(events[0].fields[0].first, "seconds");
    EXPECT_GE(events[0].fields[0].second, 0.0);

    // A null trace makes the timer a no-op.
    ScopedPhaseTimer noop(nullptr, "ignored");
}

namespace
{

SimConfig
smallTelemetryConfig(bool trace_events)
{
    SimConfig config;
    config.accesses = 64'000;
    config.warmup = 16'000;
    config.telemetry.enabled = true;
    config.telemetry.traceEvents = trace_events;
    config.telemetry.interval = 8'000;
    return config;
}

} // namespace

TEST(EpochSampler, SingleCorePdpRunProducesEpochSeries)
{
    const SimResult result =
        runSingleCore("450.soplex", "PDP-3", smallTelemetryConfig(false));
    ASSERT_NE(result.telemetry, nullptr);
    const RunTelemetry &run = *result.telemetry;
    EXPECT_EQ(run.interval, 8'000u);
    ASSERT_EQ(run.epochs.size(), 8u); // 64k accesses / 8k interval
    EXPECT_TRUE(run.events.empty());  // traceEvents off

    uint64_t accesses = 0, hits = 0, misses = 0, bypasses = 0;
    for (size_t i = 0; i < run.epochs.size(); ++i) {
        const EpochRecord &epoch = run.epochs[i];
        EXPECT_EQ(epoch.epoch, i);
        // The PDP source exports its PD and RD counter-array.
        const double *pd = epoch.policy.scalar("pd");
        ASSERT_NE(pd, nullptr);
        EXPECT_GT(*pd, 0.0);
        EXPECT_NE(epoch.policy.findSeries("rdd"), nullptr);
        ASSERT_EQ(epoch.threadOccupancy.size(), 1u);
        accesses += epoch.intervalAccesses;
        hits += epoch.intervalHits;
        misses += epoch.intervalMisses;
        bypasses += epoch.intervalBypasses;
    }
    // Interval deltas tile the measured run exactly.
    EXPECT_EQ(accesses, result.llcAccesses);
    EXPECT_EQ(hits, result.llcHits);
    EXPECT_EQ(misses, result.llcMisses);
    EXPECT_EQ(bypasses, result.llcBypasses);
}

TEST(EpochSampler, SamplingDoesNotPerturbResults)
{
    SimConfig off = smallTelemetryConfig(false);
    off.telemetry = TelemetryConfig{};
    const SimResult plain = runSingleCore("429.mcf", "PDP-2", off);
    const SimResult sampled =
        runSingleCore("429.mcf", "PDP-2", smallTelemetryConfig(true));

    EXPECT_EQ(plain.llcAccesses, sampled.llcAccesses);
    EXPECT_EQ(plain.llcHits, sampled.llcHits);
    EXPECT_EQ(plain.llcMisses, sampled.llcMisses);
    EXPECT_EQ(plain.llcBypasses, sampled.llcBypasses);
    EXPECT_EQ(plain.instructions, sampled.instructions);
    EXPECT_EQ(plain.cycles, sampled.cycles);
    EXPECT_EQ(plain.telemetry, nullptr);
    EXPECT_NE(sampled.telemetry, nullptr);
}

TEST(EpochSampler, TraceEventsIncludeEpochRolloversAndPhases)
{
    const SimResult result =
        runSingleCore("450.soplex", "PDP-3", smallTelemetryConfig(true));
    ASSERT_NE(result.telemetry, nullptr);
    const RunTelemetry &run = *result.telemetry;
    ASSERT_FALSE(run.events.empty());

    std::set<std::string> types;
    for (const TraceEvent &event : run.events)
        types.insert(event.type);
    EXPECT_TRUE(types.count("epoch"));
    // Phase timers bracket warmup and the measured loop.
    EXPECT_TRUE(types.count("phase:warmup"));
    EXPECT_TRUE(types.count("phase:measure"));
}

TEST(EpochSampler, DipRunExportsPselScalar)
{
    const SimResult result =
        runSingleCore("450.soplex", "DIP", smallTelemetryConfig(false));
    ASSERT_NE(result.telemetry, nullptr);
    ASSERT_FALSE(result.telemetry->epochs.empty());
    const Snapshot &policy = result.telemetry->epochs.back().policy;
    ASSERT_NE(policy.scalar("psel"), nullptr);
    ASSERT_NE(policy.scalar("psel_max"), nullptr);
    EXPECT_GT(*policy.scalar("psel_max"), 0.0);
}

TEST(EpochSampler, AutoIntervalKeepsAtLeastSixteenEpochsWhenScaled)
{
    SimConfig config = smallTelemetryConfig(false);
    config.accesses = 150'000; // scaled-CI-sized run
    config.telemetry.interval = 0;
    const SimResult result = runSingleCore("429.mcf", "PDP-3", config);
    ASSERT_NE(result.telemetry, nullptr);
    EXPECT_GE(result.telemetry->epochs.size(), 16u);
    EXPECT_GE(result.telemetry->interval, 4'096u);
}

TEST(EpochSampler, MultiCorePartitionRunExportsPerThreadSeries)
{
    const auto names = SpecSuite::multiCoreNames();
    WorkloadSpec workload;
    workload.benchmarks = {names.at(0), names.at(1)};

    MultiCoreConfig config;
    config.cores = 2;
    config.accessesPerThread = 40'000;
    config.warmupPerThread = 10'000;
    config.telemetry.enabled = true;
    config.telemetry.interval = 20'000;

    const MultiCoreResult result =
        runMultiCore(workload, "PDP-3", config);
    ASSERT_NE(result.telemetry, nullptr);
    ASSERT_FALSE(result.telemetry->epochs.empty());

    const EpochRecord &last = result.telemetry->epochs.back();
    ASSERT_EQ(last.threadOccupancy.size(), 2u);
    const std::vector<double> *pds = last.policy.findSeries("thread_pds");
    ASSERT_NE(pds, nullptr);
    EXPECT_EQ(pds->size(), 2u);
}

TEST(EpochSampler, MaxEpochsKeepsNewestAndCountsDropped)
{
    SimConfig config = smallTelemetryConfig(false);
    config.telemetry.interval = 4'000;
    config.telemetry.maxEpochs = 4;
    const SimResult result =
        runSingleCore("450.soplex", "LRU", config);
    ASSERT_NE(result.telemetry, nullptr);
    const RunTelemetry &run = *result.telemetry;
    EXPECT_EQ(run.epochs.size(), 4u);
    EXPECT_EQ(run.epochsDropped, 12u); // 16 sampled, newest 4 kept
    EXPECT_EQ(run.epochs.back().epoch, 15u);
}

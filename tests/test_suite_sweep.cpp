/**
 * @file
 * Parameterized sanity sweep over every benchmark of the synthetic
 * suite: each generator must run cleanly through the full hierarchy,
 * produce LLC pressure in the paper's selection range (MPKI >= 1 under
 * DIP was the paper's inclusion criterion), and behave deterministically.
 */

#include <gtest/gtest.h>

#include "sim/single_core_sim.h"
#include "trace/spec_suite.h"

using namespace pdp;

class SuiteSweepTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSweepTest, RunsCleanAndStressesTheLlc)
{
    SimConfig config;
    config.accesses = 250000;
    config.warmup = 120000;
    const SimResult r = runSingleCore(GetParam(), "DIP", config);

    // The paper only kept benchmarks with MPKI >= 1 under DIP; the
    // synthetic counterparts must stress the LLC too (loose lower bound
    // at this short run length).
    EXPECT_GT(r.mpki, 0.5) << GetParam();
    EXPECT_LT(r.mpki, 120.0) << GetParam();
    EXPECT_GT(r.llcAccesses, 10000u) << GetParam();
    EXPECT_GT(r.ipc, 0.05) << GetParam();
    EXPECT_LT(r.ipc, 4.0) << GetParam();
}

TEST_P(SuiteSweepTest, PdpNeverCatastrophicallyWorseThanDip)
{
    // PDP's guardrail across the entire suite: on no benchmark may the
    // dynamic policy blow up against the DIP baseline (the paper's worst
    // single-core case is a few percent).
    SimConfig config;
    config.accesses = 500000;
    config.warmup = 250000;
    const SimResult dip = runSingleCore(GetParam(), "DIP", config);
    const SimResult pdp = runSingleCore(GetParam(), "PDP-8", config);
    EXPECT_LT(pdp.llcMisses,
              static_cast<uint64_t>(dip.llcMisses * 1.15) + 1000)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteSweepTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &info : SpecSuite::all())
            names.push_back(info.name);
        return names;
    }()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

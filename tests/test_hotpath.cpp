/**
 * @file
 * Equivalence and transition tests for the SoA cache substrate.
 *
 * The hot-path overhaul (SoA tag store, packed per-set masks, tag
 * fingerprints, the rank-permutation LRU in the per-set scratch row and
 * the fused non-virtual LRU path) is pure layout/dispatch work: every
 * architectural observable must be identical to the frozen pre-SoA
 * ReferenceCache and to the virtual-dispatch policy path.  These tests
 * pin that down:
 *
 *  - lockstep Cache vs ReferenceCache over long random mixes (narrow
 *    and wider-than-fingerprint associativities),
 *  - fused (exact LruPolicy) vs virtual (LruPolicy subclass) dispatch,
 *  - packed valid/dirty/reused mask transitions incl. invalidate,
 *  - invariant-auditor cleanliness mid-stream (fingerprints, rank
 *    permutation, mask/canonical-state coupling),
 *  - byte-identical smoke-suite JSON across two serial runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/reference_cache.h"
#include "check/invariant_auditor.h"
#include "policies/basic.h"
#include "runner/suites.h"
#include "util/rng.h"

using namespace pdp;

namespace
{

CacheConfig
smallConfig(uint32_t sets, uint32_t ways)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    cfg.ways = ways;
    return cfg;
}

AccessContext
at(uint64_t line, uint8_t thread = 0, bool write = false)
{
    AccessContext ctx;
    ctx.lineAddr = line;
    ctx.threadId = thread;
    ctx.isWrite = write;
    return ctx;
}

void
expectSameOutcome(const AccessOutcome &a, const AccessOutcome &b,
                  uint64_t step)
{
    ASSERT_EQ(a.hit, b.hit) << "step " << step;
    ASSERT_EQ(a.bypassed, b.bypassed) << "step " << step;
    ASSERT_EQ(a.way, b.way) << "step " << step;
    ASSERT_EQ(a.evictedValid, b.evictedValid) << "step " << step;
    ASSERT_EQ(a.evictedAddr, b.evictedAddr) << "step " << step;
    ASSERT_EQ(a.evictedDirty, b.evictedDirty) << "step " << step;
    ASSERT_EQ(a.evictedReused, b.evictedReused) << "step " << step;
    ASSERT_EQ(a.evictedThread, b.evictedThread) << "step " << step;
}

/** A pseudo-random demand mix: skewed line addresses (so hits, misses
 *  and evictions all occur), two threads, ~1/4 writes. */
AccessContext
mixedAccess(Rng &rng, uint64_t span)
{
    const uint64_t line = rng.below(span);
    return at(line, static_cast<uint8_t>(line & 1), rng.below(4) == 0);
}

// ---------------------------------------------------------------------------
// Lockstep equivalence against the frozen pre-SoA substrate.

void
runLockstep(const CacheConfig &cfg, uint64_t steps)
{
    Cache soa(cfg, std::make_unique<LruPolicy>());
    ReferenceLru ref_lru;
    ReferenceCache aos(cfg, ref_lru);
    ref_lru.attach(aos.numSets(), aos.numWays());

    Rng rng(0x5ca1ab1e + cfg.ways);
    const uint64_t span = static_cast<uint64_t>(cfg.numLines()) * 3;
    for (uint64_t i = 0; i < steps; ++i) {
        AccessContext ctx = mixedAccess(rng, span);
        ctx.set = soa.setIndex(ctx.lineAddr);
        const AccessOutcome a = soa.access(ctx);
        const AccessOutcome b = aos.access(ctx);
        expectSameOutcome(a, b, i);
        if (::testing::Test::HasFatalFailure())
            return;
    }

    // Final architectural state, way by way.
    for (uint32_t set = 0; set < soa.numSets(); ++set)
        for (uint32_t way = 0; way < soa.numWays(); ++way) {
            ASSERT_EQ(soa.isValid(set, way), aos.isValid(set, way));
            ASSERT_EQ(soa.isDirty(set, way), aos.isDirty(set, way));
            ASSERT_EQ(soa.isReused(set, way), aos.isReused(set, way));
            ASSERT_EQ(soa.lineAddr(set, way), aos.lineAddr(set, way));
            ASSERT_EQ(soa.lineThread(set, way), aos.lineThread(set, way));
        }
    EXPECT_EQ(soa.stats().hits, aos.stats().hits);
    EXPECT_EQ(soa.stats().misses, aos.stats().misses);
    EXPECT_EQ(soa.stats().accesses, aos.stats().accesses);
}

TEST(HotpathEquivalence, LockstepMatchesReferenceNarrow)
{
    // Fingerprint + scratch fast path (ways <= kMaxFpWays).
    runLockstep(smallConfig(64, 8), 200000);
}

TEST(HotpathEquivalence, LockstepMatchesReferencePaperGeometry)
{
    runLockstep(smallConfig(128, 16), 200000);
}

TEST(HotpathEquivalence, LockstepMatchesReferenceWide)
{
    // Wider than kMaxFpWays: full-tag-scan fallback and policy-owned
    // rank storage.
    ASSERT_GT(32u, Cache::kMaxFpWays);
    runLockstep(smallConfig(16, 32), 100000);
}

// ---------------------------------------------------------------------------
// Fused (exact LruPolicy) vs virtual dispatch.

/** Same behaviour as LruPolicy, but a distinct dynamic type, so the
 *  substrate's exact-type fusion check does not engage. */
class UnfusedLru final : public LruPolicy
{
};

TEST(HotpathEquivalence, FusedLruMatchesVirtualLru)
{
    const CacheConfig cfg = smallConfig(64, 16);
    Cache fused(cfg, std::make_unique<LruPolicy>());
    Cache virt(cfg, std::make_unique<UnfusedLru>());

    Rng rng(0xfeedface);
    const uint64_t span = static_cast<uint64_t>(cfg.numLines()) * 3;
    for (uint64_t i = 0; i < 200000; ++i) {
        AccessContext ctx = mixedAccess(rng, span);
        ctx.set = fused.setIndex(ctx.lineAddr);
        const AccessOutcome a = fused.access(ctx);
        const AccessOutcome b = virt.access(ctx);
        expectSameOutcome(a, b, i);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_EQ(fused.stats().hits, virt.stats().hits);
    EXPECT_EQ(fused.stats().misses, virt.stats().misses);
}

// ---------------------------------------------------------------------------
// Packed-mask transitions.

TEST(HotpathMasks, InsertHitWriteInvalidateTransitions)
{
    const CacheConfig cfg = smallConfig(4, 2);
    Cache cache(cfg, std::make_unique<LruPolicy>());
    const uint64_t line = 4; // set 0 in a 4-set cache

    // Install: valid bit appears, dirty/reused stay clear.
    AccessOutcome out = cache.access(at(line));
    EXPECT_FALSE(out.hit);
    ASSERT_EQ(out.way, 0);
    EXPECT_EQ(cache.validMask(0), 1u);
    EXPECT_FALSE(cache.isDirty(0, 0));
    EXPECT_FALSE(cache.isReused(0, 0));

    // Re-reference: hit, reused bit set.
    out = cache.access(at(line));
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(cache.isReused(0, 0));
    EXPECT_FALSE(cache.isDirty(0, 0));

    // Write hit: dirty bit set.
    out = cache.access(at(line, 0, true));
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(cache.isDirty(0, 0));

    // Fill the set, then miss: the LRU victim is the original line,
    // and the eviction reports the packed dirty/reused state it
    // accumulated.
    cache.access(at(line + 4));
    EXPECT_EQ(cache.validMask(0), 3u);
    out = cache.access(at(line + 8));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, line);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_TRUE(out.evictedReused);
    out = cache.access(at(line));
    EXPECT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, line + 4); // untouched since install
    EXPECT_FALSE(out.evictedDirty);
    EXPECT_FALSE(out.evictedReused);

    // Invalidate: valid bit drops, line state reads canonical zero.
    out = cache.access(at(line + 8));
    ASSERT_TRUE(out.hit);
    const int way = out.way;
    ASSERT_GE(way, 0);
    EXPECT_TRUE(cache.invalidate(line + 8));
    EXPECT_FALSE(cache.isValid(0, static_cast<uint32_t>(way)));
    EXPECT_EQ(cache.lineAddr(0, static_cast<uint32_t>(way)), 0u);
    EXPECT_FALSE(cache.contains(line + 8));
    EXPECT_FALSE(cache.invalidate(line + 8));

    // A subsequent miss refills the invalidated way first.
    out = cache.access(at(line + 12));
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.evictedValid);
    EXPECT_EQ(out.way, way);
}

TEST(HotpathMasks, AuditorStaysCleanMidStream)
{
    // The auditor cross-checks the packed masks, fingerprints and rank
    // permutation against the canonical line state; a drifting SoA
    // representation (stale fingerprint, broken rank row, mask/tag
    // mismatch) fails here.
    const CacheConfig cfg = smallConfig(32, 16);
    Cache cache(cfg, std::make_unique<LruPolicy>());
    Rng rng(0xa0d17);
    const uint64_t span = static_cast<uint64_t>(cfg.numLines()) * 3;
    for (int i = 0; i < 50000; ++i) {
        AccessContext ctx = mixedAccess(rng, span);
        ctx.set = cache.setIndex(ctx.lineAddr);
        cache.access(ctx);
        if (i % 5000 == 4999) {
            InvariantReporter reporter;
            cache.auditInvariants(reporter);
            ASSERT_TRUE(reporter.clean()) << reporter.report();
        }
    }
    // Invalidation must clear the fingerprint too, or a later probe of
    // an aliasing address could false-hit; the auditor checks the
    // canonical coupling.
    for (uint64_t line = 0; line < 64; ++line)
        cache.invalidate(line);
    InvariantReporter reporter;
    cache.auditInvariants(reporter);
    ASSERT_TRUE(reporter.clean()) << reporter.report();
}

// ---------------------------------------------------------------------------
// Smoke-suite JSON determinism.

TEST(HotpathDeterminism, SmokeSuiteJsonIsByteIdentical)
{
    // The deterministic (volatile-free) smoke-suite document must be
    // byte-identical across serial runs: the SoA refactor may change
    // throughput but never results.  (accesses_per_sec-style metrics
    // live only in the hotpath suite, which determinism tests skip by
    // design.)
    const runner::Suite *smoke = runner::findSuite("smoke");
    ASSERT_NE(smoke, nullptr);

    runner::SuiteOptions options;
    options.scale = 0.05;

    const auto runOnce = [&]() {
        runner::ResultsSink sink(smoke->name);
        sink.setScale(options.scale);
        for (runner::Job &job : smoke->buildJobs(options)) {
            runner::JobRecord record;
            record.key = job.key;
            record.status = runner::JobStatus::Ok;
            runner::JobContext ctx;
            ctx.seed = job.seed;
            record.outcome = job.run(ctx);
            sink.add(std::move(record));
        }
        return sink.toJson(false).dump(2);
    };

    const std::string first = runOnce();
    const std::string second = runOnce();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

} // namespace
